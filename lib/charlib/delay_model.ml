module Spec = Vartune_stdcell.Spec
module Mismatch = Vartune_process.Mismatch

type params = {
  tau : float;
  r_unit : float;
  k_slew : float;
  vt_slew_gain : float;
  t_slew_base : float;
  k_trans : float;
  k_trans_slew : float;
  self_load : float;
}

(* Calibrated so the evaluation design closes timing near the paper's
   2.4 ns high-performance clock with 40-55-cell deep paths: a fan-out-4
   inverter delay of ~35 ps, XOR2 stage of ~55 ps. *)
let default =
  {
    tau = 0.007;
    r_unit = 7.0;
    k_slew = 0.08;
    vt_slew_gain = 3.0;
    t_slew_base = 0.008;
    k_trans = 1.2;
    k_trans_slew = 0.07;
    self_load = 0.4;
  }

type edge = Rise | Fall

(* Power-model constants: 1.1 V supply, energies in fJ, leakage in nW. *)
let supply = 1.1
let c_internal = 0.45 (* fF of internal node capacitance per drive unit *)
let k_short_circuit = 0.8 (* fJ per ns of input slew per drive unit *)
let leak_per_transistor = 0.55 (* nW at drive 1 *)

let drive_resistance p ~drive =
  assert (drive > 0);
  p.r_unit /. float_of_int drive

let edge_factor (spec : Spec.t) = function
  | Rise -> 1.0 +. spec.rise_skew
  | Fall -> 1.0 -. spec.rise_skew

let delay p (spec : Spec.t) ~drive ~output ~edge ~corner_factor
    ~(sample : Mismatch.sample) ~slew ~load =
  let r0 = drive_resistance p ~drive in
  let intrinsic = p.tau *. spec.parasitic in
  let out_f = Spec.output_factor spec output *. edge_factor spec edge in
  corner_factor
  *. ((out_f
       *. ((intrinsic *. (1.0 +. sample.d_intrinsic))
          +. (r0 *. (1.0 +. sample.d_resistance) *. load)))
     +. (p.k_slew *. slew *. (1.0 +. (p.vt_slew_gain *. sample.d_intrinsic))))

let transition p (spec : Spec.t) ~drive ~output ~edge ~corner_factor
    ~(sample : Mismatch.sample) ~slew ~load =
  let r0 = drive_resistance p ~drive *. (1.0 +. sample.d_resistance) in
  let parasitic_cap = p.self_load *. Spec.c_unit *. float_of_int drive in
  let out_f = Spec.output_factor spec output *. edge_factor spec edge in
  (corner_factor *. out_f
   *. (p.t_slew_base +. (p.k_trans *. r0 *. (load +. parasitic_cap))))
  +. (p.k_trans_slew *. slew)

let stage_count (spec : Spec.t) = Vartune_stdcell.Func.inversions spec.func

let internal_energy p (spec : Spec.t) ~drive ~slew ~load =
  ignore load;
  ignore p;
  let d = float_of_int drive in
  let stages = float_of_int (Vartune_stdcell.Func.inversions spec.func) in
  (supply *. supply *. c_internal *. d *. stages *. spec.parasitic /. 2.0)
  +. (k_short_circuit *. slew *. d)

let leakage (spec : Spec.t) ~drive =
  leak_per_transistor *. float_of_int spec.transistors
  *. (0.4 +. (0.6 *. float_of_int drive))

let delay_sigma p (spec : Spec.t) ~mismatch ~drive ~output ~edge ~corner_factor ~slew ~load =
  let r0 = drive_resistance p ~drive in
  let intrinsic = p.tau *. spec.parasitic in
  let out_f = Spec.output_factor spec output *. edge_factor spec edge in
  let stages = stage_count spec in
  let sigma_i = Mismatch.intrinsic_sigma mismatch ~stages ~drive () in
  let sigma_r = Mismatch.resistance_sigma mismatch ~stages ~drive () in
  let d_di = (out_f *. intrinsic) +. (p.vt_slew_gain *. p.k_slew *. slew) in
  let d_dr = out_f *. r0 *. load in
  corner_factor *. sqrt (((d_di *. sigma_i) ** 2.0) +. ((d_dr *. sigma_r) ** 2.0))
