(** Monte-Carlo library sampling (Section III/IV of the paper).

    Each sample library is the catalog re-characterised with one fresh
    local-variation draw per cell; the set of N sample libraries is the
    input to the statistical merge.  The paper uses N = 50. *)

val sample_library :
  Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  index:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  Vartune_liberty.Library.t
(** The [index]-th sample library of the stream identified by [seed].
    Every cell draws from an {!Vartune_util.Rng.stream} generator derived
    from [(seed, index, cell)], so sample k is identical whether
    generated alone, as part of a batch, or on a worker domain. *)

val sample_libraries :
  ?pool:Vartune_util.Pool.t ->
  Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  n:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  Vartune_liberty.Library.t list
(** N sample libraries, indices 0..n-1, characterised across the pool
    (default {!Vartune_util.Pool.default}) and returned in index order;
    output is independent of the pool size. *)

val fold_samples :
  Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  n:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  init:'a ->
  f:('a -> Vartune_liberty.Library.t -> 'a) ->
  unit ->
  'a
(** Streams the N sample libraries through [f] without retaining them —
    the memory-friendly path used to build statistical libraries. *)
