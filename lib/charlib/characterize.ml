module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Spec = Vartune_stdcell.Spec
module Func = Vartune_stdcell.Func
module Obs = Vartune_obs.Obs

let c_cells = Obs.Counter.make "charlib.cells"
let c_arcs = Obs.Counter.make "charlib.arcs"

type config = {
  params : Delay_model.params;
  corner : Corner.t;
  slew_axis : float array;
  load_fractions : float array;
}

let default_config =
  {
    params = Delay_model.default;
    corner = Corner.typical;
    slew_axis = [| 0.01; 0.02; 0.04; 0.08; 0.16; 0.32; 0.64; 1.0 |];
    load_fractions = [| 0.015625; 0.03125; 0.0625; 0.125; 0.25; 0.5; 0.75; 1.0 |];
  }

let load_axis config spec ~drive =
  let max_cap = Spec.max_capacitance spec ~drive in
  Array.map (fun f -> f *. max_cap) config.load_fractions

let no_sample _spec ~drive:_ = Mismatch.zero_sample

let arc config spec ~drive ~sample ~input ~output =
  let corner_factor = Corner.delay_factor config.corner in
  let loads = load_axis config spec ~drive in
  let slews = config.slew_axis in
  let table f = Lut.of_fn ~slews ~loads f in
  let delay edge ~slew ~load =
    Delay_model.delay config.params spec ~drive ~output ~edge ~corner_factor ~sample ~slew
      ~load
  in
  let transition edge ~slew ~load =
    Delay_model.transition config.params spec ~drive ~output ~edge ~corner_factor ~sample
      ~slew ~load
  in
  let energy ~slew ~load =
    Delay_model.internal_energy config.params spec ~drive ~slew ~load
  in
  Obs.Counter.incr c_arcs;
  Arc.make ~related_pin:input
    ~sense:(Func.arc_sense spec.func ~input ~output)
    ~rise_delay:(table (delay Delay_model.Rise))
    ~fall_delay:(table (delay Delay_model.Fall))
    ~rise_transition:(table (transition Delay_model.Rise))
    ~fall_transition:(table (transition Delay_model.Fall))
    ~internal_power:(table energy) ()

let cell config ?(sample_for = no_sample) (spec : Spec.t) ~drive =
  Obs.Counter.incr c_cells;
  let sample = sample_for spec ~drive in
  let func = spec.func in
  let cap = Spec.input_capacitance spec ~drive in
  let input_pins =
    List.map (fun name -> Pin.input ~name ~capacitance:cap) (Func.input_names func)
  in
  let clock_pins =
    match Func.clock_name func with
    | None -> []
    | Some name -> [ Pin.input ~name ~capacitance:(cap *. 0.8) ]
  in
  (* Sequential cells launch from the clock pin; combinational cells have
     one arc per data input.  Tie cells have no arcs at all. *)
  let arc_inputs =
    match Func.clock_name func with
    | Some clock -> [ clock ]
    | None -> Func.input_names func
  in
  let output_pins =
    List.map
      (fun output ->
        let arcs = List.map (fun input -> arc config spec ~drive ~sample ~input ~output) arc_inputs in
        Pin.output ~name:output ~max_capacitance:(Spec.max_capacitance spec ~drive) ~arcs ())
      (Func.output_names func)
  in
  let kind =
    match func with
    | Func.Dff _ -> Cell.Flip_flop
    | Func.Dlat _ -> Cell.Latch
    | Func.Inv | Func.Buf | Func.Nand _ | Func.Nor _ | Func.And _ | Func.Or _
    | Func.Nand_b _ | Func.Nor_b _ | Func.Xor _ | Func.Xnor _ | Func.Mux2 | Func.Mux2_inv
    | Func.Mux4 | Func.Full_adder | Func.Half_adder | Func.Maj3 | Func.Tie_low
    | Func.Tie_high | Func.Delay_buf ->
      Cell.Combinational
  in
  Cell.make
    ~name:(Spec.cell_name spec ~drive)
    ~family:spec.family ~drive_strength:drive ~kind
    ~area:(Spec.area spec ~drive)
    ~pins:(input_pins @ clock_pins @ output_pins)
    ~setup_time:spec.setup_time ~hold_time:spec.hold_time
    ?clock_pin:(Func.clock_name func)
    ~leakage:(Delay_model.leakage spec ~drive) ()

let library config ?name ?sample_for specs =
  let name = Option.value name ~default:(Corner.name config.corner) in
  Obs.span "charlib.library"
    ~attrs:(fun () -> [ ("library", name); ("families", string_of_int (List.length specs)) ])
    (fun () ->
      let cells =
        List.concat_map
          (fun (spec : Spec.t) ->
            List.map (fun drive -> cell config ?sample_for spec ~drive) spec.drives)
          specs
      in
      Library.make ~name ~corner:(Corner.name config.corner) ~cells)

module Store = Vartune_store.Store
module Codec = Vartune_store.Codec

let store_log_src =
  Logs.Src.create "vartune.charlib" ~doc:"characterisation store checks"

module Store_log = (val Logs.src_log store_log_src : Logs.LOG)

(* Cheap structural sanity check on an artifact served by the store: the
   cell count is fully determined by the specs in the key, so a mismatch
   means the entry is logically corrupt even though its checksum and
   codec framing were fine.  Recompute rather than serve it. *)
let expected_cells specs =
  List.fold_left (fun acc (s : Spec.t) -> acc + List.length s.drives) 0 specs

let validated_library ~what ~specs lib =
  let expected = expected_cells specs in
  let actual = Library.size lib in
  if actual = expected then Some lib
  else begin
    Store_log.warn (fun m ->
        m "stored %s library has %d cells where the specs demand %d; discarding and \
           recomputing"
          what actual expected);
    None
  end

let add_config_to_key key config =
  let p = config.params in
  Store.Key.(
    key
    |> fun k ->
    floats k "model"
      [|
        p.Delay_model.tau; p.r_unit; p.k_slew; p.vt_slew_gain; p.t_slew_base; p.k_trans;
        p.k_trans_slew; p.self_load;
      |]
    |> fun k ->
    str k "corner" (Corner.name config.corner) |> fun k ->
    floats k "slews" config.slew_axis |> fun k -> floats k "loads" config.load_fractions)

let add_specs_to_key key specs =
  List.fold_left
    (fun k (spec : Spec.t) ->
      Store.Key.str k "family"
        (Printf.sprintf "%s:%s" spec.family
           (String.concat "," (List.map string_of_int spec.drives))))
    key specs

let nominal ?(specs = Vartune_stdcell.Catalog.specs) ?store config =
  let compute () = library config specs in
  match store with
  | None -> compute ()
  | Some store -> (
    let key = add_specs_to_key (add_config_to_key (Store.Key.v "nominal") config) specs in
    match
      Option.bind (Store.load store key Codec.r_library)
        (validated_library ~what:"nominal" ~specs)
    with
    | Some lib -> lib
    | None ->
      let lib = compute () in
      Store.save store key (fun b -> Codec.w_library b lib);
      lib)
