module Rng = Vartune_util.Rng
module Pool = Vartune_util.Pool
module Mismatch = Vartune_process.Mismatch
module Spec = Vartune_stdcell.Spec

(* Stream derivation: sample [index] owns the [index]-th split of the
   root generator for [seed]; within a sample, each (family, drive) cell
   owns a hash-indexed split of the sample stream.  Both hops use
   Rng.stream, so any (seed, index, cell) triple yields the same draws
   no matter which domain characterises it or in what order — sample
   libraries are reproducible and order-independent, which is what makes
   the parallel fan-out below bit-deterministic. *)
let sample_stream ~seed ~index = Rng.stream (Rng.create seed) index

let cell_rng ~seed ~index (spec : Spec.t) ~drive =
  Rng.stream (sample_stream ~seed ~index) (Hashtbl.hash (spec.Spec.family, drive))

let sample_library config ~mismatch ~seed ~index ?(specs = Vartune_stdcell.Catalog.specs) () =
  let sample_for spec ~drive =
    let rng = cell_rng ~seed ~index spec ~drive in
    Mismatch.draw mismatch rng ~stages:(Delay_model.stage_count spec) ~drive ()
  in
  let name = Printf.sprintf "%s_mc%03d" (Vartune_process.Corner.name config.Characterize.corner) index in
  Characterize.library config ~name ~sample_for specs

let sample_libraries ?pool config ~mismatch ~seed ~n ?specs () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Pool.map pool
    (fun index -> sample_library config ~mismatch ~seed ~index ?specs ())
    (List.init n Fun.id)

let fold_samples config ~mismatch ~seed ~n ?specs ~init ~f () =
  let rec go acc index =
    if index >= n then acc
    else go (f acc (sample_library config ~mismatch ~seed ~index ?specs ())) (index + 1)
  in
  go init 0
