module Rng = Vartune_util.Rng
module Mismatch = Vartune_process.Mismatch
module Spec = Vartune_stdcell.Spec

(* Every (sample index, cell) pair gets its own deterministic RNG stream so
   sample libraries are reproducible and order-independent. *)
let cell_rng ~seed ~index (spec : Spec.t) ~drive =
  let h = Hashtbl.hash (spec.family, drive, index) in
  Rng.create (seed lxor (h * 0x9E3779B9) lxor (index * 0x85EBCA6B))

let sample_library config ~mismatch ~seed ~index ?(specs = Vartune_stdcell.Catalog.specs) () =
  let sample_for spec ~drive =
    let rng = cell_rng ~seed ~index spec ~drive in
    Mismatch.draw mismatch rng ~stages:(Delay_model.stage_count spec) ~drive ()
  in
  let name = Printf.sprintf "%s_mc%03d" (Vartune_process.Corner.name config.Characterize.corner) index in
  Characterize.library config ~name ~sample_for specs

let sample_libraries config ~mismatch ~seed ~n ?specs () =
  List.init n (fun index -> sample_library config ~mismatch ~seed ~index ?specs ())

let fold_samples config ~mismatch ~seed ~n ?specs ~init ~f () =
  let rec go acc index =
    if index >= n then acc
    else go (f acc (sample_library config ~mismatch ~seed ~index ?specs ())) (index + 1)
  in
  go init 0
