module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Cell = Vartune_liberty.Cell

let row_height = 1.4 (* µm, fixed by the row architecture *)

type placed = { inst : Netlist.inst_id; width : float; mutable x : float; mutable row : int }

type t = {
  by_inst : (Netlist.inst_id, placed) Hashtbl.t;
  mutable die_w : float;
  die_h : float;
  rows : int;
}

let cell_width (cell : Cell.t) = Float.max 0.4 (cell.Cell.area /. row_height)

(* pack a row's cells left to right in their current x order *)
let legalize_row die_w cells =
  let sorted = List.stable_sort (fun a b -> compare a.x b.x) cells in
  let total = List.fold_left (fun acc c -> acc +. c.width) 0.0 sorted in
  let gap =
    let n = List.length sorted in
    if n <= 1 then 0.0 else Float.max 0.0 ((die_w -. total) /. float_of_int (n + 1))
  in
  let cursor = ref gap in
  List.iter
    (fun c ->
      c.x <- !cursor +. (c.width /. 2.0);
      cursor := !cursor +. c.width +. gap)
    sorted

let place ?(utilization = 0.7) ?(passes = 4) nl =
  if utilization <= 0.0 || utilization > 1.0 then invalid_arg "Placement.place: utilization";
  let total_area = Netlist.total_area nl in
  let die_area = Float.max 1.0 (total_area /. utilization) in
  let die_w = sqrt die_area in
  let rows = max 1 (int_of_float (Float.ceil (die_w /. row_height))) in
  let die_h = float_of_int rows *. row_height in
  let by_inst = Hashtbl.create 1024 in
  (* initial order: topological, so connected cells land near each other *)
  let order = Check.topological_order nl in
  let row_fill = Array.make rows 0.0 in
  let current_row = ref 0 in
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      let width = cell_width inst.Netlist.cell in
      (* snake-fill rows *)
      if row_fill.(!current_row) +. width > die_w && !current_row < rows - 1 then incr current_row;
      let row = !current_row in
      let x = row_fill.(row) +. (width /. 2.0) in
      row_fill.(row) <- row_fill.(row) +. width;
      Hashtbl.replace by_inst inst_id { inst = inst_id; width; x; row })
    order;
  let t = { by_inst; die_w; die_h; rows } in
  (* force-directed refinement: move every cell toward the centroid of
     its neighbours, then re-legalise each row *)
  let neighbours inst_id =
    let inst = Netlist.instance nl inst_id in
    let clock = Netlist.clock nl in
    let acc = ref [] in
    let visit (_, nid) =
      if Some nid <> clock then begin
        let net = Netlist.net nl nid in
        (match net.Netlist.driver with
        | Some r when r.Netlist.inst <> inst_id -> acc := r.Netlist.inst :: !acc
        | _ -> ());
        List.iter
          (fun (r : Netlist.pin_ref) -> if r.inst <> inst_id then acc := r.inst :: !acc)
          net.Netlist.sinks
      end
    in
    List.iter visit inst.Netlist.inputs;
    List.iter visit inst.Netlist.outputs;
    !acc
  in
  for _ = 1 to passes do
    (* desired position: centroid of neighbours (x and y) *)
    let desired = Hashtbl.create (Hashtbl.length by_inst) in
    Hashtbl.iter
      (fun inst_id p ->
        let cx, cy =
          match neighbours inst_id with
          | [] -> (p.x, (float_of_int p.row +. 0.5) *. row_height)
          | ns ->
            let sx = ref 0.0 and sy = ref 0.0 and n = ref 0 in
            List.iter
              (fun other ->
                match Hashtbl.find_opt by_inst other with
                | Some q ->
                  sx := !sx +. q.x;
                  sy := !sy +. ((float_of_int q.row +. 0.5) *. row_height);
                  incr n
                | None -> ())
              ns;
            if !n = 0 then (p.x, (float_of_int p.row +. 0.5) *. row_height)
            else (!sx /. float_of_int !n, !sy /. float_of_int !n)
        in
        Hashtbl.replace desired inst_id (cx, cy))
      by_inst;
    (* order-preserving row binning: sort by desired y, fill rows up to
       the die width so no row can collapse-overflow *)
    let all = Hashtbl.fold (fun inst_id p acc -> (inst_id, p) :: acc) by_inst [] in
    let sorted_y =
      List.sort
        (fun (a, _) (b, _) ->
          let _, ya = Hashtbl.find desired a and _, yb = Hashtbl.find desired b in
          if ya <> yb then compare ya yb else compare a b)
        all
    in
    let fill = ref 0.0 and row = ref 0 in
    List.iter
      (fun (inst_id, p) ->
        if !fill +. p.width > die_w && !row < rows - 1 then begin
          incr row;
          fill := 0.0
        end;
        p.row <- !row;
        fill := !fill +. p.width;
        let cx, _ = Hashtbl.find desired inst_id in
        p.x <- cx)
      sorted_y;
    let buckets = Array.make rows [] in
    Hashtbl.iter (fun _ p -> buckets.(p.row) <- p :: buckets.(p.row)) by_inst;
    Array.iter (legalize_row die_w) buckets
  done;
  (* overflowing rows (rounding, rebalance tail) stretch the die *)
  let extent = ref t.die_w in
  Hashtbl.iter (fun _ p -> extent := Float.max !extent (p.x +. (p.width /. 2.0))) by_inst;
  t.die_w <- !extent;
  t

let position t inst_id =
  let p = Hashtbl.find t.by_inst inst_id in
  (p.x, (float_of_int p.row +. 0.5) *. row_height)

let die t = (t.die_w, t.die_h)

let hpwl t nl nid =
  let net = Netlist.net nl nid in
  let points =
    List.filter_map
      (fun inst_id ->
        match Hashtbl.find_opt t.by_inst inst_id with
        | Some p -> Some (p.x, (float_of_int p.row +. 0.5) *. row_height)
        | None -> None)
      ((match net.Netlist.driver with Some r -> [ r.Netlist.inst ] | None -> [])
      @ List.map (fun (r : Netlist.pin_ref) -> r.inst) net.Netlist.sinks)
  in
  match points with
  | [] | [ _ ] -> 0.0
  | (x0, y0) :: rest ->
    let min_x, max_x, min_y, max_y =
      List.fold_left
        (fun (lx, hx, ly, hy) (x, y) ->
          (Float.min lx x, Float.max hx x, Float.min ly y, Float.max hy y))
        (x0, x0, y0, y0) rest
    in
    max_x -. min_x +. (max_y -. min_y)

let total_wirelength t nl =
  let acc = ref 0.0 in
  Netlist.iter_nets nl ~f:(fun net ->
      if Some net.Netlist.net_id <> Netlist.clock nl then
        acc := !acc +. hpwl t nl net.Netlist.net_id);
  !acc

let wire_caps ?(cap_per_um = 0.00018) t nl nid = cap_per_um *. hpwl t nl nid

let overlap_free t nl =
  ignore nl;
  let buckets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ p ->
      let existing = Option.value (Hashtbl.find_opt buckets p.row) ~default:[] in
      Hashtbl.replace buckets p.row (p :: existing))
    t.by_inst;
  Hashtbl.fold
    (fun _ cells ok ->
      ok
      &&
      let sorted = List.sort (fun a b -> Float.compare a.x b.x) cells in
      let rec check = function
        | a :: (b :: _ as rest) ->
          (a.x +. (a.width /. 2.0)) <= (b.x -. (b.width /. 2.0)) +. 1e-6 && check rest
        | [ _ ] | [] -> true
      in
      check sorted)
    buckets true
