(** Row-based standard cell placement.

    Implements the paper's stated future work ("does the local variation
    reduction survive place and route?") far enough to answer it within
    the model: cells are packed into rows of a square die sized from the
    total area and a utilisation target, ordered by connectivity, then
    refined with force-directed passes that pull each cell toward the
    centroid of its neighbours.  Wire capacitance then comes from
    half-perimeter wirelength instead of the synthesis fanout model. *)

type t

val place : ?utilization:float -> ?passes:int -> Vartune_netlist.Netlist.t -> t
(** Places every live instance.  [utilization] defaults to 0.7, [passes]
    to 4 refinement iterations.  Deterministic. *)

val position : t -> Vartune_netlist.Netlist.inst_id -> float * float
(** Centre of the placed cell, µm.  Raises [Not_found] for unplaced
    (removed) instances. *)

val die : t -> float * float
(** Die width and height, µm. *)

val row_height : float
(** The row pitch, µm. *)

val hpwl : t -> Vartune_netlist.Netlist.t -> Vartune_netlist.Netlist.net_id -> float
(** Half-perimeter wirelength of a net over its driver and sink cells,
    µm; [0.] for nets touching fewer than two placed cells. *)

val total_wirelength : t -> Vartune_netlist.Netlist.t -> float

val wire_caps :
  ?cap_per_um:float -> t -> Vartune_netlist.Netlist.t ->
  Vartune_netlist.Netlist.net_id -> float
(** HPWL-based wire capacitance (default 0.18 fF/µm), suitable for
    {!Vartune_sta.Timing.config}'s [wire_caps] hook. *)

val overlap_free : t -> Vartune_netlist.Netlist.t -> bool
(** Whether no two cells in a row overlap — the basic legality check. *)
