(** Clock tree synthesis (geometric, analytic).

    The second half of the paper's future work: after placement, the
    clock is distributed through a recursively bisected buffer tree.
    Buffers sit at the centroid of the sink group they drive; insertion
    delays come from the library's buffer arcs with HPWL-based wire
    loads.  The resulting skew feeds timing as extra uncertainty. *)

type node =
  | Leaf of { sinks : Vartune_netlist.Netlist.inst_id list; delay : float }
  | Branch of { delay : float; children : node list }

type result = {
  tree : node;
  buffers : int;
  levels : int;
  sinks : int;
  min_insertion : float;
  max_insertion : float;
  skew : float;  (** max - min insertion delay, ns *)
}

val synthesize :
  ?fanout:int ->
  ?cap_per_um:float ->
  Placement.t ->
  Vartune_netlist.Netlist.t ->
  library:Vartune_liberty.Library.t ->
  result
(** Builds the tree over all sequential sinks.  [fanout] bounds the
    sinks per leaf buffer (default 8).  Raises [Invalid_argument] if the
    design has no sequential cells or the library has no BUF family. *)

val insertion_delays : result -> (Vartune_netlist.Netlist.inst_id * float) list
(** Per-sink clock insertion delay. *)
