module Netlist = Vartune_netlist.Netlist
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc

type node =
  | Leaf of { sinks : Netlist.inst_id list; delay : float }
  | Branch of { delay : float; children : node list }

type result = {
  tree : node;
  buffers : int;
  levels : int;
  sinks : int;
  min_insertion : float;
  max_insertion : float;
  skew : float;
}

type sink = { inst : Netlist.inst_id; x : float; y : float; cap : float }

let centroid sinks =
  let n = float_of_int (List.length sinks) in
  let sx = List.fold_left (fun acc s -> acc +. s.x) 0.0 sinks in
  let sy = List.fold_left (fun acc s -> acc +. s.y) 0.0 sinks in
  (sx /. n, sy /. n)

let group_hpwl sinks =
  match sinks with
  | [] | [ _ ] -> 0.0
  | first :: rest ->
    let lx, hx, ly, hy =
      List.fold_left
        (fun (lx, hx, ly, hy) s ->
          (Float.min lx s.x, Float.max hx s.x, Float.min ly s.y, Float.max hy s.y))
        (first.x, first.x, first.y, first.y)
        rest
    in
    hx -. lx +. (hy -. ly)

(* smallest buffer whose drive limit covers the load; largest otherwise *)
let pick_buffer buffers load =
  match List.find_opt (fun (c : Cell.t) -> load <= Cell.max_load c) buffers with
  | Some c -> c
  | None -> List.nth buffers (List.length buffers - 1)

let buffer_delay (cell : Cell.t) ~load =
  match Cell.arcs cell with
  | arc :: _ -> Arc.delay arc ~slew:0.04 ~load
  | [] -> invalid_arg "Cts: buffer without arcs"

let synthesize ?(fanout = 8) ?(cap_per_um = 0.00018) placement nl ~library =
  let buffers = Library.family_members library "BUF" in
  if buffers = [] then invalid_arg "Cts.synthesize: library has no BUF family";
  let sinks =
    Netlist.fold_instances nl ~init:[] ~f:(fun acc inst ->
        if Cell.is_sequential inst.Netlist.cell then begin
          match inst.Netlist.cell.Cell.clock_pin with
          | Some ck -> begin
            match Cell.find_pin inst.Netlist.cell ck with
            | Some pin ->
              let x, y = Placement.position placement inst.Netlist.inst_id in
              { inst = inst.Netlist.inst_id; x; y; cap = pin.Pin.capacitance } :: acc
            | None -> acc
          end
          | None -> acc
        end
        else acc)
  in
  if sinks = [] then invalid_arg "Cts.synthesize: no sequential sinks";
  let buffer_count = ref 0 in
  let rec build sinks =
    incr buffer_count;
    if List.length sinks <= fanout then begin
      let load =
        List.fold_left (fun acc s -> acc +. s.cap) 0.0 sinks
        +. (cap_per_um *. group_hpwl sinks)
      in
      let cell = pick_buffer buffers load in
      (Leaf { sinks = List.map (fun s -> s.inst) sinks; delay = buffer_delay cell ~load }, 1)
    end
    else begin
      (* bisect along the longer dimension at the median *)
      let lx, hx, ly, hy =
        match sinks with
        | first :: rest ->
          List.fold_left
            (fun (lx, hx, ly, hy) s ->
              (Float.min lx s.x, Float.max hx s.x, Float.min ly s.y, Float.max hy s.y))
            (first.x, first.x, first.y, first.y)
            rest
        | [] -> assert false
      in
      let key = if hx -. lx >= hy -. ly then fun s -> s.x else fun s -> s.y in
      let sorted = List.stable_sort (fun a b -> compare (key a) (key b)) sinks in
      let n = List.length sorted in
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | rest when i = 0 -> (List.rev acc, rest)
        | s :: rest -> split (i - 1) (s :: acc) rest
      in
      let left, right = split (n / 2) [] sorted in
      let left_node, left_depth = build left in
      let right_node, right_depth = build right in
      (* this buffer drives the two child buffers plus routing between
         the group centroids *)
      let child_cap =
        match buffers with
        | b :: _ -> 2.0 *. Cell.input_capacitance b "A"
        | [] -> assert false
      in
      let lx_, ly_ = centroid left and rx_, ry_ = centroid right in
      let wire = cap_per_um *. (Float.abs (lx_ -. rx_) +. Float.abs (ly_ -. ry_)) in
      let load = child_cap +. wire in
      let cell = pick_buffer buffers load in
      ( Branch { delay = buffer_delay cell ~load; children = [ left_node; right_node ] },
        1 + max left_depth right_depth )
    end
  in
  let tree, levels = build sinks in
  let insertions = ref [] in
  let rec walk acc = function
    | Leaf { sinks; delay } ->
      List.iter (fun inst -> insertions := (inst, acc +. delay) :: !insertions) sinks
    | Branch { delay; children } -> List.iter (walk (acc +. delay)) children
  in
  walk 0.0 tree;
  let delays = List.map snd !insertions in
  let min_insertion = List.fold_left Float.min infinity delays in
  let max_insertion = List.fold_left Float.max neg_infinity delays in
  {
    tree;
    buffers = !buffer_count;
    levels;
    sinks = List.length sinks;
    min_insertion;
    max_insertion;
    skew = max_insertion -. min_insertion;
  }

let insertion_delays result =
  let acc = ref [] in
  let rec walk base = function
    | Leaf { sinks; delay } -> List.iter (fun inst -> acc := (inst, base +. delay) :: !acc) sinks
    | Branch { delay; children } -> List.iter (walk (base +. delay)) children
  in
  walk 0.0 result.tree;
  !acc
