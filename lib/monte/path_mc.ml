module Rng = Vartune_util.Rng
module Pool = Vartune_util.Pool
module Stat = Vartune_util.Stat
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Variation = Vartune_process.Variation
module Delay_model = Vartune_charlib.Delay_model
module Spec = Vartune_stdcell.Spec
module Catalog = Vartune_stdcell.Catalog
module Path = Vartune_sta.Path
module Cell = Vartune_liberty.Cell
module Obs = Vartune_obs.Obs

let c_samples = Obs.Counter.make "mc.samples"

type sample_config = {
  n : int;
  include_local : bool;
  include_global : bool;
  corner : Corner.t;
  mismatch : Mismatch.t;
  global_variation : Variation.t;
  params : Delay_model.params;
}

let default_config =
  {
    n = 200;
    include_local = true;
    include_global = false;
    corner = Corner.typical;
    mismatch = Mismatch.default;
    global_variation = Variation.default;
    params = Delay_model.default;
  }

type result = { delays : float array; mean : float; sigma : float }

type resolved_step = {
  spec : Spec.t;
  drive : int;
  out_pin : string;
  slew : float;
  load : float;
}

let resolve (path : Path.t) =
  List.map
    (fun (s : Path.step) ->
      match Catalog.find s.cell.Cell.family with
      | None ->
        invalid_arg
          (Printf.sprintf "Path_mc: cell family %s not in catalog" s.cell.Cell.family)
      | Some spec ->
        { spec; drive = s.cell.Cell.drive_strength; out_pin = s.out_pin;
          slew = s.input_slew; load = s.load })
    path.Path.steps

let step_delay cfg ~corner_factor ~sample step =
  let delay edge =
    Delay_model.delay cfg.params step.spec ~drive:step.drive ~output:step.out_pin ~edge
      ~corner_factor ~sample ~slew:step.slew ~load:step.load
  in
  Float.max (delay Delay_model.Rise) (delay Delay_model.Fall)


let simulate ?pool cfg ~seed (path : Path.t) =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "mc.simulate"
    ~attrs:(fun () ->
      [ ("samples", string_of_int cfg.n); ("depth", string_of_int (Path.depth path)) ])
  @@ fun () ->
  Obs.Counter.add c_samples cfg.n;
  let steps = resolve path in
  let base = Rng.stream (Rng.create seed) 0 in
  let corner_factor = Corner.delay_factor cfg.corner in
  (* Sample i draws from its own stream derived from (seed, i), so the
     per-sample loop parallelises with bit-identical output at any job
     count, and corner sweeps at the same seed stay draw-paired. *)
  (* Samples batch per pool task at the resolved chunk size; granularity
     only, never affects results. *)
  let delays =
    Pool.init pool cfg.n (fun i ->
        let rng = Rng.stream base i in
        let global =
          if cfg.include_global then Variation.draw_factor cfg.global_variation rng
          else 1.0
        in
        List.fold_left
          (fun acc step ->
            let sample =
              if cfg.include_local then
                Mismatch.draw cfg.mismatch rng
                  ~stages:(Delay_model.stage_count step.spec)
                  ~drive:step.drive ()
              else Mismatch.zero_sample
            in
            acc +. (global *. step_delay cfg ~corner_factor ~sample step))
          0.0 steps)
  in
  { delays; mean = Stat.mean delays; sigma = Stat.stddev delays }

let corner_sweep ?pool cfg ~seed path =
  List.map (fun corner -> (corner, simulate ?pool { cfg with corner } ~seed path)) Corner.all

let local_share ?pool cfg ~seed path =
  let local =
    simulate ?pool { cfg with include_local = true; include_global = false } ~seed path
  in
  let total =
    simulate ?pool { cfg with include_local = true; include_global = true } ~seed path
  in
  if total.sigma = 0.0 then 0.0
  else (local.sigma *. local.sigma) /. (total.sigma *. total.sigma)
