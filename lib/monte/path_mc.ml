module Rng = Vartune_util.Rng
module Pool = Vartune_util.Pool
module Stat = Vartune_util.Stat
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Variation = Vartune_process.Variation
module Delay_model = Vartune_charlib.Delay_model
module Spec = Vartune_stdcell.Spec
module Catalog = Vartune_stdcell.Catalog
module Path = Vartune_sta.Path
module Cell = Vartune_liberty.Cell
module Obs = Vartune_obs.Obs

let c_samples = Obs.Counter.make "mc.samples"

type sample_config = {
  n : int;
  include_local : bool;
  include_global : bool;
  corner : Corner.t;
  mismatch : Mismatch.t;
  global_variation : Variation.t;
  params : Delay_model.params;
}

let default_config =
  {
    n = 200;
    include_local = true;
    include_global = false;
    corner = Corner.typical;
    mismatch = Mismatch.default;
    global_variation = Variation.default;
    params = Delay_model.default;
  }

type result = { delays : float array; mean : float; sigma : float }

(* A resolved path is stored struct-of-arrays: the per-step scalars the
   sample loop touches (slew, load, Pelgrom sigmas) sit in flat
   unboxed float arrays indexed by step, not behind a list of records.
   The Pelgrom sigmas are precomputed here once per path — the same
   [resistance_sigma]/[intrinsic_sigma] arithmetic [Mismatch.draw]
   performs per draw, so the draws below stay bit-identical. *)
type resolved = {
  nsteps : int;
  specs : Spec.t array;
  drives : int array;
  out_pins : string array;
  slews : float array;
  loads : float array;
  res_sigmas : float array;  (* per-step Pelgrom resistance sigma *)
  int_sigmas : float array;  (* per-step Pelgrom intrinsic sigma *)
}

let resolve cfg (path : Path.t) =
  let steps = Array.of_list path.Path.steps in
  let nsteps = Array.length steps in
  let spec_of (s : Path.step) =
    match Catalog.find s.cell.Cell.family with
    | None ->
      invalid_arg
        (Printf.sprintf "Path_mc: cell family %s not in catalog" s.cell.Cell.family)
    | Some spec -> spec
  in
  let specs = Array.map spec_of steps in
  let drives = Array.map (fun (s : Path.step) -> s.cell.Cell.drive_strength) steps in
  let r = {
    nsteps;
    specs;
    drives;
    out_pins = Array.map (fun (s : Path.step) -> s.out_pin) steps;
    slews = Array.map (fun (s : Path.step) -> s.input_slew) steps;
    loads = Array.map (fun (s : Path.step) -> s.load) steps;
    res_sigmas = Array.make nsteps 0.0;
    int_sigmas = Array.make nsteps 0.0;
  } in
  for k = 0 to nsteps - 1 do
    let stages = Delay_model.stage_count specs.(k) in
    r.res_sigmas.(k) <-
      Mismatch.resistance_sigma cfg.mismatch ~stages ~drive:drives.(k) ();
    r.int_sigmas.(k) <- Mismatch.intrinsic_sigma cfg.mismatch ~stages ~drive:drives.(k) ()
  done;
  r

let step_delay cfg ~corner_factor ~sample r k =
  let delay edge =
    Delay_model.delay cfg.params r.specs.(k) ~drive:r.drives.(k) ~output:r.out_pins.(k)
      ~edge ~corner_factor ~sample ~slew:r.slews.(k) ~load:r.loads.(k)
  in
  Float.max (delay Delay_model.Rise) (delay Delay_model.Fall)

let simulate ?pool cfg ~seed (path : Path.t) =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "mc.simulate"
    ~attrs:(fun () ->
      [ ("samples", string_of_int cfg.n); ("depth", string_of_int (Path.depth path)) ])
  @@ fun () ->
  Obs.Counter.add c_samples cfg.n;
  let r = resolve cfg path in
  let base = Rng.stream (Rng.create seed) 0 in
  let corner_factor = Corner.delay_factor cfg.corner in
  (* Sample i draws from its own stream derived from (seed, i), so the
     per-sample loop parallelises with bit-identical output at any job
     count, and corner sweeps at the same seed stay draw-paired. *)
  (* Samples batch per pool task at the resolved chunk size; granularity
     only, never affects results. *)
  let delays =
    Pool.init pool cfg.n (fun i ->
        let rng = Rng.stream base i in
        let global =
          if cfg.include_global then Variation.draw_factor cfg.global_variation rng
          else 1.0
        in
        (* One scratch sample per Monte-Carlo trial, refreshed in place
           each step — the per-step allocation of the old record-list
           fold is gone.  Draw order matches [Mismatch.draw], and the
           left-to-right sum is the same float-op sequence as the old
           [List.fold_left], so results are bit-identical. *)
        let scratch = { Mismatch.d_resistance = 0.0; d_intrinsic = 0.0 } in
        let acc = ref 0.0 in
        for k = 0 to r.nsteps - 1 do
          let sample =
            if cfg.include_local then begin
              Mismatch.draw_into rng ~resistance_sigma:r.res_sigmas.(k)
                ~intrinsic_sigma:r.int_sigmas.(k) scratch;
              scratch
            end
            else Mismatch.zero_sample
          in
          acc := !acc +. (global *. step_delay cfg ~corner_factor ~sample r k)
        done;
        !acc)
  in
  { delays; mean = Stat.mean delays; sigma = Stat.stddev delays }

let corner_sweep ?pool cfg ~seed path =
  List.map (fun corner -> (corner, simulate ?pool { cfg with corner } ~seed path)) Corner.all

let local_share ?pool cfg ~seed path =
  let local =
    simulate ?pool { cfg with include_local = true; include_global = false } ~seed path
  in
  let total =
    simulate ?pool { cfg with include_local = true; include_global = true } ~seed path
  in
  if total.sigma = 0.0 then 0.0
  else (local.sigma *. local.sigma) /. (total.sigma *. total.sigma)
