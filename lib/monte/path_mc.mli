(** Monte-Carlo simulation of extracted data-paths (Section VII-C).

    The paper validates the statistical library by extracting short,
    medium and long paths from the synthesised design and re-simulating
    them transistor-level across process corners, with and without global
    variation.  Here the "transistor level" is the analytic delay model
    the library was characterised from, evaluated per sample with fresh
    local (and optionally global) variation draws. *)

type sample_config = {
  n : int;  (** samples; the paper uses 200 *)
  include_local : bool;
  include_global : bool;
  corner : Vartune_process.Corner.t;
  mismatch : Vartune_process.Mismatch.t;
  global_variation : Vartune_process.Variation.t;
  params : Vartune_charlib.Delay_model.params;
}

val default_config : sample_config
(** N = 200, local only, typical corner, default models. *)

type result = {
  delays : float array;  (** one simulated path delay per sample *)
  mean : float;
  sigma : float;
}

val simulate :
  ?pool:Vartune_util.Pool.t -> sample_config -> seed:int -> Vartune_sta.Path.t -> result
(** Re-simulates the path: per sample, every cell draws one local
    variation sample (plus one shared global factor when enabled) and the
    step delays are re-evaluated at each step's recorded (slew, load)
    operating point.  Sample [i] draws from its own
    {!Vartune_util.Rng.stream} generator derived from [(seed, i)], and the
    sample loop runs across the pool (default
    {!Vartune_util.Pool.default}) — the delays array is bit-identical at
    any job count.  Raises [Invalid_argument] if a path cell is not in
    the catalog. *)

val corner_sweep :
  ?pool:Vartune_util.Pool.t -> sample_config -> seed:int -> Vartune_sta.Path.t ->
  (Vartune_process.Corner.t * result) list
(** Fig. 15: the same path across fast/typical/slow corners (same seed,
    so the local draws are paired). *)

val local_share :
  ?pool:Vartune_util.Pool.t -> sample_config -> seed:int -> Vartune_sta.Path.t -> float
(** Fig. 16: fraction of total delay variance attributable to local
    variation: [var_local / var_global_and_local]. *)
