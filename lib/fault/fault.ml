let log_src = Logs.Src.create "vartune.fault" ~doc:"Deterministic fault injection"

module Log = (val Logs.src_log log_src : Logs.LOG)

type point =
  | Read
  | Write
  | Rename
  | Lock
  | Fsync
  | Worker_crash
  | Enospc
  | Partial_write
  | Delay

let n_points = 9

let index = function
  | Read -> 0
  | Write -> 1
  | Rename -> 2
  | Lock -> 3
  | Fsync -> 4
  | Worker_crash -> 5
  | Enospc -> 6
  | Partial_write -> 7
  | Delay -> 8

let point_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Rename -> "rename"
  | Lock -> "lock"
  | Fsync -> "fsync"
  | Worker_crash -> "worker_crash"
  | Enospc -> "enospc"
  | Partial_write -> "partial_write"
  | Delay -> "delay"

let point_of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "rename" -> Some Rename
  | "lock" -> Some Lock
  | "fsync" -> Some Fsync
  | "worker_crash" -> Some Worker_crash
  | "enospc" -> Some Enospc
  | "partial_write" -> Some Partial_write
  | "delay" -> Some Delay
  | _ -> None

exception Injected of { point : point; site : string; seq : int }

let () =
  Printexc.register_printer (function
    | Injected { point; site; seq } ->
      Some
        (Printf.sprintf "Vartune_fault.Fault.Injected(%s at %s, occurrence %d)"
           (point_to_string point) site seq)
    | _ -> None)

type trigger =
  | Rate of float (* fire each occurrence with this probability *)
  | Nth of int    (* fire exactly on the Nth occurrence, 1-based *)

type config = {
  spec : string;
  seed : int64;
  triggers : trigger option array; (* indexed by [index point] *)
  occ : int Atomic.t array;        (* occurrences consumed per point *)
  fired : int Atomic.t array;      (* injections delivered per point *)
}

(* The disabled fast path is [Atomic.get state == None]: one load and a
   branch, no allocation. *)
let state : config option Atomic.t = Atomic.make None

let injected_counter = Vartune_obs.Obs.Counter.make "fault.injected"

(* splitmix64 finaliser — self-contained on purpose: vartune_util's Pool
   consults this module, so depending on Vartune_util.Rng would be a
   cycle. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let golden = 0x9e3779b97f4a7c15L

(* Uniform draw in [0, 1) for occurrence [k] (0-based) of point [i]. *)
let u01 ~seed ~point_ix ~k =
  let open Int64 in
  let h =
    mix64
      (add seed
         (add
            (mul golden (of_int (k + 1)))
            (mul 0xbf58476d1ce4e5b9L (of_int (point_ix + 1)))))
  in
  Int64.to_float (shift_right_logical h 11) /. 9007199254740992.0 (* 2^53 *)

let parse_trigger name value =
  match point_of_string name with
  | None -> Error (Printf.sprintf "unknown fault point %S" name)
  | Some point ->
    if String.length value > 0 && value.[0] = '#' then
      match int_of_string_opt (String.sub value 1 (String.length value - 1)) with
      | Some n when n >= 1 -> Ok (point, Nth n)
      | _ -> Error (Printf.sprintf "bad occurrence index %S for %s (want #N, N >= 1)" value name)
    else
      match float_of_string_opt value with
      | Some r when r >= 0.0 && r <= 1.0 -> Ok (point, Rate r)
      | Some r -> Error (Printf.sprintf "rate %g for %s out of range [0, 1]" r name)
      | None -> Error (Printf.sprintf "bad trigger %S for %s (want a rate or #N)" value name)

(* Structured form of a schedule: the items in spec order plus the
   seed.  [parse_spec]/[print_spec] round-trip exactly — rates are
   printed with %.17g, which float_of_string recovers bit-for-bit — so
   a schedule can be logged, stored and replayed verbatim. *)
let parse_spec spec =
  let spec = String.trim spec in
  if spec = "" then Error "empty fault spec"
  else
    let body, seed =
      match String.rindex_opt spec ':' with
      | None -> Ok spec, Ok 0L
      | Some i ->
        let s = String.sub spec (i + 1) (String.length spec - i - 1) in
        ( Ok (String.sub spec 0 i),
          match Int64.of_string_opt s with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "bad seed %S" s) )
    in
    match body, seed with
    | Error e, _ | _, Error e -> Error e
    | Ok body, Ok seed ->
      let items = String.split_on_char ',' body in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
          match String.index_opt item '=' with
          | None -> Error (Printf.sprintf "bad fault item %S (want point=trigger)" item)
          | Some eq -> (
            let name = String.trim (String.sub item 0 eq) in
            let value =
              String.trim (String.sub item (eq + 1) (String.length item - eq - 1))
            in
            match parse_trigger name value with
            | Error e -> Error e
            | Ok entry -> go (entry :: acc) rest))
      in
      (match go [] items with
      | Error e -> Error e
      | Ok entries -> Ok (entries, seed))

let print_trigger = function
  | Rate r -> Printf.sprintf "%.17g" r
  | Nth n -> Printf.sprintf "#%d" n

let print_spec (entries, seed) =
  Printf.sprintf "%s:%Ld"
    (String.concat ","
       (List.map
          (fun (point, trigger) ->
            Printf.sprintf "%s=%s" (point_to_string point) (print_trigger trigger))
          entries))
    seed

let parse spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok (entries, seed) ->
    let triggers = Array.make n_points None in
    (* later items win, matching the array semantics the engine uses *)
    List.iter (fun (point, trigger) -> triggers.(index point) <- Some trigger) entries;
    Ok
      {
        spec = String.trim spec;
        seed;
        triggers;
        occ = Array.init n_points (fun _ -> Atomic.make 0);
        fired = Array.init n_points (fun _ -> Atomic.make 0);
      }

let configure spec =
  match parse spec with
  | Error _ as e -> e
  | Ok config ->
    Atomic.set state (Some config);
    Log.warn (fun m -> m "fault injection active: %s" config.spec);
    Ok ()

let clear () = Atomic.set state None
let active () = Atomic.get state <> None

let spec () =
  match Atomic.get state with None -> None | Some c -> Some c.spec

(* Returns the 1-based occurrence index when the fault fires. *)
let fires_seq point ~site =
  match Atomic.get state with
  | None -> None
  | Some c -> (
    let i = index point in
    match c.triggers.(i) with
    | None -> None
    | Some trigger ->
      let k = Atomic.fetch_and_add c.occ.(i) 1 in
      let hit =
        match trigger with
        | Rate r -> u01 ~seed:c.seed ~point_ix:i ~k < r
        | Nth n -> k + 1 = n
      in
      if hit then begin
        Atomic.incr c.fired.(i);
        Vartune_obs.Obs.Counter.incr injected_counter;
        Log.debug (fun m ->
            m "injecting %s fault at %s (occurrence %d)" (point_to_string point)
              site (k + 1))
      end;
      if hit then Some (k + 1) else None)

let fires point ~site = fires_seq point ~site <> None

let check point ~site =
  match fires_seq point ~site with
  | None -> ()
  | Some seq -> raise (Injected { point; site; seq })

let injected point =
  match Atomic.get state with
  | None -> 0
  | Some c -> Atomic.get c.fired.(index point)

let occurrences point =
  match Atomic.get state with
  | None -> 0
  | Some c -> Atomic.get c.occ.(index point)

let total_injected () =
  match Atomic.get state with
  | None -> 0
  | Some c -> Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.fired

let with_spec s f =
  let previous = Atomic.get state in
  (match configure s with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Fault.with_spec: %s" msg));
  Fun.protect ~finally:(fun () -> Atomic.set state previous) f
