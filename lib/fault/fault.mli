(** Deterministic, seed-driven fault injection.

    The pipeline's failure paths (I/O errors in the artifact store,
    dying worker domains, ENOSPC, truncated writes) are impossible to
    exercise reliably with real hardware faults.  This module lets the
    hardened layers ask, at every syscall-shaped boundary, "does this
    operation fail right now?" and get a deterministic, replayable
    answer derived from a user-supplied schedule and seed.

    {2 Schedule specification}

    A schedule is a comma-separated list of [point=trigger] items with
    an optional [:seed] suffix after the last item:

    {v write=0.25,rename=#2,enospc=1.0:42 v}

    Trigger forms:
    - [RATE] — a float in [0, 1]: each occurrence of the point fires
      independently with that probability, decided by hashing
      [(seed, point, occurrence-index)] with splitmix64.  [1.0] fires
      on every occurrence, [0.0] never.
    - [#N] — fire exactly on the [N]-th occurrence (1-based) of the
      point and never again.

    Occurrence indices are per-point atomic counters, so at [jobs=1]
    replay is bit-for-bit; at [jobs>1] the set of firing decisions is
    fixed by the seed while their assignment to concurrent operations
    follows scheduling order.

    {2 Cost when disabled}

    When no schedule is configured every probe is a single atomic load
    plus a branch and allocates nothing — the hot path is unchanged.
    Fault points are constant constructors and [~site] strings are
    static literals, so probes do not allocate even when enabled. *)

type point =
  | Read           (** reading an artifact back from disk *)
  | Write          (** writing bytes to a temp file *)
  | Rename         (** atomically landing a temp file *)
  | Lock           (** acquiring a per-entry lock file *)
  | Fsync          (** flushing a temp file before rename *)
  | Worker_crash   (** a pool worker domain dies mid-task *)
  | Enospc         (** the filesystem reports no space left *)
  | Partial_write  (** a write persists only a prefix of the bytes *)
  | Delay
      (** a request's service time is stretched: the consulting layer
          sleeps instead of failing.  Consumed by
          {!Vartune_flow.Run_request.exec} at the start of request
          evaluation, so the serve layer's queueing, deadline and
          overload-shedding behaviour can be exercised with
          reproducibly slow requests. *)

val point_to_string : point -> string
(** Lower-case spelling used in schedule specs ("read", "worker_crash", ...). *)

val point_of_string : string -> point option

type trigger =
  | Rate of float  (** each occurrence fires independently with this probability *)
  | Nth of int  (** fire exactly on the N-th occurrence, 1-based *)

val parse_spec : string -> ((point * trigger) list * int64, string) result
(** Parses a schedule spec into its items (in spec order; a point
    repeated later wins) and seed (0 when no [:seed] suffix is given).
    Errors name the offending token — an unknown point, an out-of-range
    rate, a malformed [#N] or seed.  The CLI turns these into usage
    errors (exit 64). *)

val print_spec : (point * trigger) list * int64 -> string
(** Canonical rendering; [parse_spec (print_spec s) = Ok s] — rates are
    printed with enough digits to round-trip bit-for-bit. *)

exception Injected of { point : point; site : string; seq : int }
(** Raised by {!check} when a fault fires.  [site] names the consulting
    boundary (e.g. ["store.save.rename"]); [seq] is the 1-based
    occurrence index of the point that fired.  Hardened layers catch
    this exactly where they catch the real error ([Unix_error],
    [Sys_error]); an [Injected] escaping to the CLI is a bug in the
    hardening and maps to the internal-error exit code. *)

val configure : string -> (unit, string) result
(** Parse and activate a schedule.  Resets all occurrence counters.
    Returns [Error msg] (leaving any previous schedule active) on an
    unknown point name, a rate outside [0, 1], a malformed [#N], or a
    malformed seed. *)

val clear : unit -> unit
(** Deactivate injection and reset all counters. *)

val active : unit -> bool
(** [true] iff a schedule is currently configured. *)

val spec : unit -> string option
(** The spec string of the active schedule, for logging/replay. *)

val fires : point -> site:string -> bool
(** Consume one occurrence of [point] and report whether it faults.
    Always [false] (and counts nothing) when inactive or when the
    active schedule does not mention [point]. *)

val check : point -> site:string -> unit
(** Like {!fires} but raises {!Injected} when the fault fires. *)

val injected : point -> int
(** Number of times [point] has fired since the last [configure]/[clear]. *)

val occurrences : point -> int
(** Number of occurrences of [point] consumed since the last
    [configure]/[clear]. *)

val total_injected : unit -> int
(** Sum of {!injected} over all points. *)

val with_spec : string -> (unit -> 'a) -> 'a
(** [with_spec s f] runs [f] with schedule [s] active, restoring the
    previous schedule (or the cleared state) afterwards, even on
    exception.  Raises [Invalid_argument] if [s] does not parse. *)
