(** Versioned binary codec for pipeline artifacts.

    Fast, allocation-light binary (de)serialisation of everything the
    persistent artifact store holds: statistical libraries, synthesis
    results, critical-path lists and design-sigma aggregates.  All
    numbers are fixed-width little-endian — floats travel as their
    IEEE-754 bit patterns — so a decoded artifact is {e bit-identical}
    to the encoded one, which is what lets warm pipeline runs reproduce
    cold-run reports byte for byte.

    Decoding is defensive: every read is bounds-checked and every
    reconstruction validated, so malformed input raises {!Corrupt}
    rather than producing a plausible-but-wrong artifact.  The store
    treats {!Corrupt} (and constructor validation failures) as an
    evict-and-recompute signal — a bad entry is never trusted.

    {2 Version-bump policy}

    {!version} names the layout {e and} the pipeline semantics baked
    into stored artifacts.  Bump it when either changes:

    - the binary layout of any codec below;
    - anything that alters what a stage computes for the same key
      (delay model, catalog, characterisation grid, statistical merge,
      mapper/sizer/STA algorithms).

    The version participates in every store key, so a bump simply
    orphans old entries (they are never read again); [vartune store
    wipe] or deleting the store directory reclaims the space. *)

val version : int
(** Current codec/pipeline schema version. *)

exception Corrupt of string
(** Raised by every [r_*] function on malformed or truncated input. *)

type reader
(** A read cursor over an immutable payload string. *)

val reader : string -> reader

val at_end : reader -> bool
(** Whether the cursor consumed the whole payload. *)

(** {1 Primitives}

    Writers append to a [Buffer.t]; exposed for the store's entry
    framing and for tests. *)

val w_int : Buffer.t -> int -> unit
val r_int : reader -> int

val w_bool : Buffer.t -> bool -> unit
val r_bool : reader -> bool

val w_float : Buffer.t -> float -> unit
(** Exact: the IEEE-754 bit pattern is preserved. *)

val r_float : reader -> float

val w_string : Buffer.t -> string -> unit
val r_string : reader -> string

val w_float_array : Buffer.t -> float array -> unit
val r_float_array : reader -> float array

(** {1 Artifact codecs} *)

val w_library : Buffer.t -> Vartune_liberty.Library.t -> unit

val r_library : reader -> Vartune_liberty.Library.t
(** Cells, pins, arcs and LUTs are rebuilt through their validating
    constructors; a structural inconsistency raises {!Corrupt} (or the
    constructor's [Invalid_argument], which the store treats the same
    way). *)

val w_design_sigma : Buffer.t -> Vartune_stats.Design_sigma.t -> unit
val r_design_sigma : reader -> Vartune_stats.Design_sigma.t

val w_paths : Buffer.t -> Vartune_sta.Path.t list -> unit
(** Self-contained: the cells referenced by path steps are embedded
    once (deduplicated by name) and steps point into that table. *)

val r_paths : reader -> Vartune_sta.Path.t list

val w_result : Buffer.t -> Vartune_synth.Synthesis.result -> unit
(** Embeds a faithful netlist image ({!Vartune_netlist.Netlist.export})
    — tombstones, sink order and name counter included — plus the
    scalar verdicts and the sizer report.  The timing analysis itself
    is not stored: it is a deterministic function of the netlist and is
    recomputed on decode. *)

val r_result :
  timing_config:Vartune_sta.Timing.config -> reader -> Vartune_synth.Synthesis.result
(** Rebuilds the netlist and re-runs {!Vartune_sta.Timing.run} under
    [timing_config].  The recomputed worst slack must match the stored
    one bit-for-bit; a mismatch means the pipeline changed without a
    {!version} bump and raises {!Corrupt} so the entry is evicted. *)
