(** Persistent content-addressed artifact store.

    Caches expensive pipeline artifacts (statistical libraries,
    synthesis runs, measured minimum periods, ...) on disk so warm
    [vartune] invocations skip straight to report rendering.  Entries
    are addressed by a {!Key}: a self-describing recipe of every input
    that determines the artifact — codec/pipeline version, seeds,
    sample counts, grids, fingerprints — hashed into the file name.
    The full recipe string is stored inside each entry and compared on
    read, so even a hash collision degrades to a miss, never to reusing
    the wrong artifact.

    {2 Layout}

    {v
    <dir>/objects/<hh>/<32-hex-digest>.vt
    v}

    where [<hh>] is the first two digest characters.  Each entry is a
    single file: magic, codec version, recipe string, payload length,
    payload checksum, payload.  The default [<dir>] resolves, highest
    priority first, from the [--store] flag (callers pass the directory
    explicitly), the [VARTUNE_STORE] environment variable, then
    [$XDG_CACHE_HOME/vartune] or [~/.cache/vartune].

    {2 Safety}

    - {e Concurrency}: writers serialise through a per-entry lock file
      (stale locks from crashed writers are broken after a grace
      period) and land entries with write-to-temp + atomic rename, so
      readers — including pool worker domains — only ever see complete
      entries.  Two concurrent writers of the same key produce
      identical bytes; either rename winning is correct.
    - {e Corruption}: every read verifies the magic, version, recipe
      and payload checksum, and decoding validates structurally.  A bad
      entry is evicted (unlinked) and reported as a miss so the caller
      recomputes; it is never trusted.
    - {e Faults}: transient I/O failures (real, or injected through
      {!Vartune_fault.Fault} at the [read]/[write]/[rename]/[lock]/
      [fsync]/[enospc]/[partial_write] points) are retried
      {!retry_attempts} times with exponential, deterministically
      jittered backoff.  ENOSPC — or exhausting retries repeatedly —
      degrades the handle to no-store mode: loads report misses, saves
      become no-ops, a [store.degraded] counter ticks and one warning
      is logged.  The store is an accelerator; it never fails the
      pipeline and never serves a corrupt artifact.

    {2 Telemetry}

    When {!Vartune_obs.Obs} is enabled, operations record [store.load]
    / [store.save] spans and the counters [store.hit], [store.miss],
    [store.write], [store.evict], [store.read_bytes],
    [store.write_bytes].  Per-handle {!stats} are always maintained
    (atomically — handles may be shared across domains). *)

module Key : sig
  type t
  (** An accumulating recipe of labelled ingredients.  Builders return
      a new key, so recipes can be extended functionally; the codec
      version is included implicitly. *)

  val v : string -> t
  (** [v stage] starts a recipe for the named pipeline stage. *)

  val int : t -> string -> int -> t
  val bool : t -> string -> bool -> t

  val float : t -> string -> float -> t
  (** Exact: the IEEE-754 bit pattern is the ingredient. *)

  val str : t -> string -> string -> t
  (** Length-prefixed, so delimiter injection cannot alias recipes. *)

  val floats : t -> string -> float array -> t

  val id : t -> string
  (** The full recipe string (stored in entries, compared on read). *)

  val hex : t -> string
  (** 128-bit digest of {!id} — the entry file name. *)
end

type t

type stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  read_bytes : int;
  written_bytes : int;
  retries : int;  (** transient-failure attempts that were retried *)
  errors : int;  (** operations that failed after exhausting retries *)
  degraded : bool;  (** whether the handle has dropped to no-store mode *)
}

type error =
  | Io of { site : string; reason : string }
      (** A transient failure survived every retry.  [site] names the
          operation ([store.load], [store.save], [store.save.lock]). *)
  | No_space of { site : string }  (** ENOSPC — persistent, never retried. *)
  | Locked
      (** A live writer holds the entry lock.  Benign: content
          addressing guarantees it is landing identical bytes. *)
  | Disabled  (** The handle is degraded; the operation was not attempted. *)

val error_to_string : error -> string

val retry_attempts : int
(** Bounded attempts per operation before a transient failure becomes
    {!Io}. *)

val default_dir : unit -> string
(** [VARTUNE_STORE], else [$XDG_CACHE_HOME/vartune], else
    [~/.cache/vartune]; falls back to [_vartune_store] in the working
    directory when no home is known. *)

val open_dir : string -> t
(** Opens (creating if needed) a store rooted at the given directory
    and sweeps temp/lock litter left by crashed writers. *)

val open_default : unit -> t
(** [open_dir (default_dir ())]. *)

val dir : t -> string

val load : t -> Key.t -> (Codec.reader -> 'a) -> 'a option
(** [load t key decode] returns the decoded artifact, or [None] on a
    miss.  Corrupt entries ({!Codec.Corrupt}, checksum or framing
    failures, any decoder exception) are evicted and reported as a
    miss.  I/O failures (after retries) also report [None]; use
    {!load_result} to observe them.  Never raises. *)

val load_result : t -> Key.t -> (Codec.reader -> 'a) -> ('a option, error) result
(** Like {!load} but surfaces typed failures.  [Ok None] is an honest
    miss (including evicted corruption); [Error _] means the entry's
    state is unknown because I/O failed. *)

val save : t -> Key.t -> (Buffer.t -> unit) -> unit
(** [save t key encode] lands the encoded artifact atomically (write to
    temp, fsync, rename).  If a live writer already holds the entry's
    lock the write is skipped — content addressing guarantees the
    competing writer lands identical bytes.  I/O failures are logged
    and counted, never raised: the store is an accelerator, not a
    dependency.  Only an exception from [encode] itself (a caller bug)
    propagates, and the entry lock is released on that path too. *)

val save_result : t -> Key.t -> (Buffer.t -> unit) -> (unit, error) result
(** Like {!save} but surfaces typed failures instead of swallowing
    them. *)

val degraded : t -> bool
(** [true] once the handle has dropped to no-store mode (ENOSPC or
    repeated exhausted-retry failures).  Degradation is one-way for the
    lifetime of the handle. *)

val entry_path : t -> Key.t -> string
(** Where the entry for [key] lives (whether or not it exists). *)

val entry_count : t -> int
val total_bytes : t -> int

val wipe : t -> unit
(** Removes every entry (the directory itself survives). *)

val stats : t -> stats
(** Operation counts recorded through this handle. *)
