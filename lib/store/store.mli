(** Persistent content-addressed artifact store.

    Caches expensive pipeline artifacts (statistical libraries,
    synthesis runs, measured minimum periods, ...) on disk so warm
    [vartune] invocations skip straight to report rendering.  Entries
    are addressed by a {!Key}: a self-describing recipe of every input
    that determines the artifact — codec/pipeline version, seeds,
    sample counts, grids, fingerprints — hashed into the file name.
    The full recipe string is stored inside each entry and compared on
    read, so even a hash collision degrades to a miss, never to reusing
    the wrong artifact.

    {2 Layout}

    {v
    <dir>/objects/<hh>/<32-hex-digest>.vt
    v}

    where [<hh>] is the first two digest characters.  Each entry is a
    single file: magic, codec version, recipe string, payload length,
    payload checksum, payload.  The default [<dir>] resolves, highest
    priority first, from the [--store] flag (callers pass the directory
    explicitly), the [VARTUNE_STORE] environment variable, then
    [$XDG_CACHE_HOME/vartune] or [~/.cache/vartune].

    {2 Safety}

    - {e Concurrency}: writers serialise through a per-entry lock file
      (stale locks from crashed writers are broken after a grace
      period) and land entries with write-to-temp + atomic rename, so
      readers — including pool worker domains — only ever see complete
      entries.  Two concurrent writers of the same key produce
      identical bytes; either rename winning is correct.
    - {e Corruption}: every read verifies the magic, version, recipe
      and payload checksum, and decoding validates structurally.  A bad
      entry is evicted (unlinked) and reported as a miss so the caller
      recomputes; it is never trusted.

    {2 Telemetry}

    When {!Vartune_obs.Obs} is enabled, operations record [store.load]
    / [store.save] spans and the counters [store.hit], [store.miss],
    [store.write], [store.evict], [store.read_bytes],
    [store.write_bytes].  Per-handle {!stats} are always maintained
    (atomically — handles may be shared across domains). *)

module Key : sig
  type t
  (** An accumulating recipe of labelled ingredients.  Builders return
      a new key, so recipes can be extended functionally; the codec
      version is included implicitly. *)

  val v : string -> t
  (** [v stage] starts a recipe for the named pipeline stage. *)

  val int : t -> string -> int -> t
  val bool : t -> string -> bool -> t

  val float : t -> string -> float -> t
  (** Exact: the IEEE-754 bit pattern is the ingredient. *)

  val str : t -> string -> string -> t
  (** Length-prefixed, so delimiter injection cannot alias recipes. *)

  val floats : t -> string -> float array -> t

  val id : t -> string
  (** The full recipe string (stored in entries, compared on read). *)

  val hex : t -> string
  (** 128-bit digest of {!id} — the entry file name. *)
end

type t

type stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  read_bytes : int;
  written_bytes : int;
}

val default_dir : unit -> string
(** [VARTUNE_STORE], else [$XDG_CACHE_HOME/vartune], else
    [~/.cache/vartune]; falls back to [_vartune_store] in the working
    directory when no home is known. *)

val open_dir : string -> t
(** Opens (creating if needed) a store rooted at the given directory
    and sweeps temp/lock litter left by crashed writers. *)

val open_default : unit -> t
(** [open_dir (default_dir ())]. *)

val dir : t -> string

val load : t -> Key.t -> (Codec.reader -> 'a) -> 'a option
(** [load t key decode] returns the decoded artifact, or [None] on a
    miss.  Corrupt entries ({!Codec.Corrupt}, checksum or framing
    failures, constructor validation errors) are evicted and reported
    as a miss. *)

val save : t -> Key.t -> (Buffer.t -> unit) -> unit
(** [save t key encode] lands the encoded artifact atomically.  If a
    live writer already holds the entry's lock the write is skipped —
    content addressing guarantees the competing writer lands identical
    bytes.  I/O failures are logged, never raised: the store is an
    accelerator, not a dependency. *)

val entry_path : t -> Key.t -> string
(** Where the entry for [key] lives (whether or not it exists). *)

val entry_count : t -> int
val total_bytes : t -> int

val wipe : t -> unit
(** Removes every entry (the directory itself survives). *)

val stats : t -> stats
(** Operation counts recorded through this handle. *)
