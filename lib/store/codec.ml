module Grid = Vartune_util.Grid
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Netlist = Vartune_netlist.Netlist
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path
module Synthesis = Vartune_synth.Synthesis
module Sizer = Vartune_synth.Sizer
module Design_sigma = Vartune_stats.Design_sigma
module Dist = Vartune_stats.Dist

(* Bump on any layout change AND on any pipeline-semantics change that
   alters what a stage computes for the same key — see codec.mli. *)
let version = 1

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type reader = { s : string; mutable pos : int }

let reader s = { s; pos = 0 }
let at_end r = r.pos = String.length r.s

let need r n =
  if n < 0 || r.pos + n > String.length r.s then
    corrupt "truncated payload (need %d bytes at %d of %d)" n r.pos (String.length r.s)

(* ------------------------------------------------------------------ *)
(* Primitives: fixed-width little-endian                               *)
(* ------------------------------------------------------------------ *)

let w_i64 b v = Buffer.add_int64_le b v

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.s r.pos in
  r.pos <- r.pos + 8;
  v

let w_int b v = w_i64 b (Int64.of_int v)
let r_int r = Int64.to_int (r_i64 r)

let w_bool b v = w_int b (if v then 1 else 0)

let r_bool r =
  match r_int r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool tag %d" n

let w_float b v = w_i64 b (Int64.bits_of_float v)
let r_float r = Int64.float_of_bits (r_i64 r)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

(* Element count of a list/array about to be decoded: each element
   consumes at least one byte downstream, so a count beyond the
   remaining payload is corruption, not a huge allocation request. *)
let r_count r =
  let n = r_int r in
  if n < 0 || n > String.length r.s - r.pos then corrupt "bad element count %d" n;
  n

let w_list b w xs =
  w_int b (List.length xs);
  List.iter (fun x -> w b x) xs

let r_list r f = List.init (r_count r) (fun _ -> f r)

let w_option b w = function
  | None -> w_int b 0
  | Some x ->
    w_int b 1;
    w b x

let r_option r f =
  match r_int r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> corrupt "bad option tag %d" n

let w_float_array b a =
  w_int b (Array.length a);
  Array.iter (fun v -> w_float b v) a

let r_float_array r =
  let n = r_count r in
  Array.init n (fun _ -> r_float r)

(* ------------------------------------------------------------------ *)
(* Liberty: Grid / Lut / Arc / Pin / Cell / Library                    *)
(* ------------------------------------------------------------------ *)

(* Grids travel as their flat row-major backing array — the same bytes
   the old nested get/set walk produced, streamed without per-row
   structure or bounds checks. *)
let w_grid b g =
  let rows = Grid.rows g and cols = Grid.cols g in
  w_int b rows;
  w_int b cols;
  let data = Grid.unsafe_data g in
  for k = 0 to (rows * cols) - 1 do
    w_float b (Array.unsafe_get data k)
  done

let r_grid r =
  let rows = r_int r in
  let cols = r_int r in
  if rows <= 0 || cols <= 0 || rows * cols > String.length r.s - r.pos then
    corrupt "bad grid dimensions %dx%d" rows cols;
  let data = Array.make (rows * cols) 0.0 in
  for k = 0 to (rows * cols) - 1 do
    Array.unsafe_set data k (r_float r)
  done;
  Grid.of_flat ~rows ~cols data

let w_lut b lut =
  w_float_array b (Lut.slews lut);
  w_float_array b (Lut.loads lut);
  w_grid b (Lut.values lut)

let r_lut r =
  let slews = r_float_array r in
  let loads = r_float_array r in
  let values = r_grid r in
  Lut.make ~slews ~loads ~values

let sense_tag = function
  | Arc.Positive_unate -> 0
  | Arc.Negative_unate -> 1
  | Arc.Non_unate -> 2

let sense_of_tag = function
  | 0 -> Arc.Positive_unate
  | 1 -> Arc.Negative_unate
  | 2 -> Arc.Non_unate
  | n -> corrupt "bad arc sense tag %d" n

let w_arc b (a : Arc.t) =
  w_string b a.related_pin;
  w_int b (sense_tag a.sense);
  w_lut b a.rise_delay;
  w_lut b a.fall_delay;
  w_lut b a.rise_transition;
  w_lut b a.fall_transition;
  w_option b w_lut a.rise_delay_sigma;
  w_option b w_lut a.fall_delay_sigma;
  w_option b w_lut a.internal_power

let r_arc r =
  let related_pin = r_string r in
  let sense = sense_of_tag (r_int r) in
  let rise_delay = r_lut r in
  let fall_delay = r_lut r in
  let rise_transition = r_lut r in
  let fall_transition = r_lut r in
  let rise_delay_sigma = r_option r r_lut in
  let fall_delay_sigma = r_option r r_lut in
  let internal_power = r_option r r_lut in
  Arc.make ~related_pin ~sense ~rise_delay ~fall_delay ~rise_transition ~fall_transition
    ?rise_delay_sigma ?fall_delay_sigma ?internal_power ()

let w_pin b (p : Pin.t) =
  match p.direction with
  | Pin.Input ->
    w_int b 0;
    w_string b p.name;
    w_float b p.capacitance
  | Pin.Output ->
    w_int b 1;
    w_string b p.name;
    w_option b w_float p.max_capacitance;
    w_list b w_arc p.arcs

let r_pin r =
  match r_int r with
  | 0 ->
    let name = r_string r in
    let capacitance = r_float r in
    Pin.input ~name ~capacitance
  | 1 ->
    let name = r_string r in
    let max_capacitance = r_option r r_float in
    let arcs = r_list r r_arc in
    Pin.output ~name ?max_capacitance ~arcs ()
  | n -> corrupt "bad pin direction tag %d" n

let kind_tag = function
  | Cell.Combinational -> 0
  | Cell.Flip_flop -> 1
  | Cell.Latch -> 2

let kind_of_tag = function
  | 0 -> Cell.Combinational
  | 1 -> Cell.Flip_flop
  | 2 -> Cell.Latch
  | n -> corrupt "bad cell kind tag %d" n

let w_cell b (c : Cell.t) =
  w_string b c.name;
  w_string b c.family;
  w_int b c.drive_strength;
  w_int b (kind_tag c.kind);
  w_float b c.area;
  w_list b w_pin c.pins;
  w_float b c.setup_time;
  w_float b c.hold_time;
  w_option b w_string c.clock_pin;
  w_float b c.leakage

let r_cell r =
  let name = r_string r in
  let family = r_string r in
  let drive_strength = r_int r in
  let kind = kind_of_tag (r_int r) in
  let area = r_float r in
  let pins = r_list r r_pin in
  let setup_time = r_float r in
  let hold_time = r_float r in
  let clock_pin = r_option r r_string in
  let leakage = r_float r in
  Cell.make ~name ~family ~drive_strength ~kind ~area ~pins ~setup_time ~hold_time
    ?clock_pin ~leakage ()

let w_library b lib =
  w_string b (Library.name lib);
  w_string b (Library.corner lib);
  w_list b w_cell (Library.cells lib)

let r_library r =
  let name = r_string r in
  let corner = r_string r in
  let cells = r_list r r_cell in
  Library.make ~name ~corner ~cells

(* ------------------------------------------------------------------ *)
(* Shared cell tables                                                  *)
(*                                                                     *)
(* Netlists and paths reference the same library cell many times; a    *)
(* blob embeds each distinct cell once (keyed by name — names are      *)
(* unique within a library) and sites store indices.                   *)
(* ------------------------------------------------------------------ *)

type cell_table_enc = { index_of : (string, int) Hashtbl.t; mutable rev : Cell.t list }

let ct_create () = { index_of = Hashtbl.create 64; rev = [] }

let ct_index t (c : Cell.t) =
  match Hashtbl.find_opt t.index_of c.name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length t.index_of in
    Hashtbl.add t.index_of c.name i;
    t.rev <- c :: t.rev;
    i

let w_cell_table b t = w_list b w_cell (List.rev t.rev)

let r_cell_table r = Array.of_list (r_list r r_cell)

let ct_get table i =
  if i < 0 || i >= Array.length table then corrupt "cell index %d out of range" i;
  table.(i)

(* ------------------------------------------------------------------ *)
(* Design sigma                                                        *)
(* ------------------------------------------------------------------ *)

let w_design_sigma b (ds : Design_sigma.t) =
  w_float b ds.dist.Dist.mean;
  w_float b ds.dist.Dist.sigma;
  w_int b ds.paths;
  w_float b ds.worst_path_3sigma

let r_design_sigma r =
  let mean = r_float r in
  let sigma = r_float r in
  let paths = r_int r in
  let worst_path_3sigma = r_float r in
  { Design_sigma.dist = { Dist.mean; sigma }; paths; worst_path_3sigma }

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let w_endpoint b = function
  | Timing.Reg_data { inst; pin } ->
    w_int b 0;
    w_int b inst;
    w_string b pin
  | Timing.Primary_output nid ->
    w_int b 1;
    w_int b nid

let r_endpoint r =
  match r_int r with
  | 0 ->
    let inst = r_int r in
    let pin = r_string r in
    Timing.Reg_data { inst; pin }
  | 1 -> Timing.Primary_output (r_int r)
  | n -> corrupt "bad endpoint tag %d" n

let w_step ct b (s : Path.step) =
  w_int b s.inst;
  w_int b (ct_index ct s.cell);
  w_string b s.out_pin;
  w_string b s.arc.Arc.related_pin;
  w_float b s.input_slew;
  w_float b s.load;
  w_float b s.delay

let r_step table r =
  let inst = r_int r in
  let cell = ct_get table (r_int r) in
  let out_pin = r_string r in
  let related_pin = r_string r in
  let input_slew = r_float r in
  let load = r_float r in
  let delay = r_float r in
  let arc =
    match Cell.find_pin cell out_pin with
    | None -> corrupt "path step: cell %s has no pin %s" cell.Cell.name out_pin
    | Some pin -> (
      match Pin.find_arc pin ~related_pin with
      | None ->
        corrupt "path step: cell %s pin %s has no arc from %s" cell.Cell.name out_pin
          related_pin
      | Some arc -> arc)
  in
  { Path.inst; cell; out_pin; arc; input_slew; load; delay }

let w_path ct b (p : Path.t) =
  w_endpoint b p.endpoint;
  w_list b (w_step ct) p.steps;
  w_float b p.arrival;
  w_float b p.required;
  w_float b p.slack

let r_path table r =
  let endpoint = r_endpoint r in
  let steps = r_list r (r_step table) in
  let arrival = r_float r in
  let required = r_float r in
  let slack = r_float r in
  { Path.endpoint; steps; arrival; required; slack }

let w_paths b paths =
  (* the cell table must precede the paths in the stream, so encode the
     bodies into a scratch buffer first *)
  let ct = ct_create () in
  let body = Buffer.create 4096 in
  w_list body (w_path ct) paths;
  w_cell_table b ct;
  Buffer.add_buffer b body

let r_paths r =
  let table = r_cell_table r in
  r_list r (r_path table)

(* ------------------------------------------------------------------ *)
(* Netlist + synthesis result                                          *)
(* ------------------------------------------------------------------ *)

let w_pin_ref b (p : Netlist.pin_ref) =
  w_int b p.Netlist.inst;
  w_string b p.Netlist.pin

let r_pin_ref r =
  let inst = r_int r in
  let pin = r_string r in
  { Netlist.inst; pin }

let w_port b (pin, nid) =
  w_string b pin;
  w_int b nid

let r_port r =
  let pin = r_string r in
  let nid = r_int r in
  (pin, nid)

let w_netlist b nl =
  let repr = Netlist.export nl in
  let ct = ct_create () in
  let body = Buffer.create 65536 in
  w_string body repr.Netlist.repr_name;
  w_int body (Array.length repr.Netlist.repr_nets);
  Array.iter
    (fun (name, driver, sinks) ->
      w_string body name;
      w_option body w_pin_ref driver;
      w_list body w_pin_ref sinks)
    repr.Netlist.repr_nets;
  w_int body (Array.length repr.Netlist.repr_instances);
  Array.iter
    (fun slot ->
      w_option body
        (fun body (name, cell, inputs, outputs) ->
          w_string body name;
          w_int body (ct_index ct cell);
          w_list body w_port inputs;
          w_list body w_port outputs)
        slot)
    repr.Netlist.repr_instances;
  w_list body (fun b v -> w_int b v) repr.Netlist.repr_pis;
  w_list body (fun b v -> w_int b v) repr.Netlist.repr_pos;
  w_option body (fun b v -> w_int b v) repr.Netlist.repr_clock;
  w_int body repr.Netlist.repr_name_counter;
  w_cell_table b ct;
  Buffer.add_buffer b body

let r_netlist r =
  let table = r_cell_table r in
  let repr_name = r_string r in
  let n_nets = r_count r in
  let repr_nets =
    Array.init n_nets (fun _ ->
        let name = r_string r in
        let driver = r_option r r_pin_ref in
        let sinks = r_list r r_pin_ref in
        (name, driver, sinks))
  in
  let n_insts = r_count r in
  let repr_instances =
    Array.init n_insts (fun _ ->
        r_option r (fun r ->
            let name = r_string r in
            let cell = ct_get table (r_int r) in
            let inputs = r_list r r_port in
            let outputs = r_list r r_port in
            (name, cell, inputs, outputs)))
  in
  let repr_pis = r_list r r_int in
  let repr_pos = r_list r r_int in
  let repr_clock = r_option r r_int in
  let repr_name_counter = r_int r in
  Netlist.import
    {
      Netlist.repr_name;
      repr_nets;
      repr_instances;
      repr_pis;
      repr_pos;
      repr_clock;
      repr_name_counter;
    }

let w_sizer b (s : Sizer.report) =
  w_int b s.iterations;
  w_int b s.resized;
  w_int b s.buffered;
  w_int b s.decomposed;
  w_int b s.downsized;
  w_int b s.window_violations

let r_sizer r =
  let iterations = r_int r in
  let resized = r_int r in
  let buffered = r_int r in
  let decomposed = r_int r in
  let downsized = r_int r in
  let window_violations = r_int r in
  { Sizer.iterations; resized; buffered; decomposed; downsized; window_violations }

let w_result b (res : Synthesis.result) =
  w_netlist b res.netlist;
  w_bool b res.feasible;
  w_float b res.worst_slack;
  w_float b res.area;
  w_int b res.instances;
  w_sizer b res.sizer

let r_result ~timing_config r =
  let netlist = r_netlist r in
  let feasible = r_bool r in
  let worst_slack = r_float r in
  let area = r_float r in
  let instances = r_int r in
  let sizer = r_sizer r in
  (* The sizer always leaves its timing equal to a fresh analysis of the
     final netlist, so recomputation reproduces the cold run's timing
     bit-for-bit.  A drift means the pipeline changed without a codec
     version bump — evict rather than trust the entry. *)
  let timing = Timing.run timing_config netlist in
  let recomputed = Timing.worst_slack timing in
  if not (Int64.equal (Int64.bits_of_float recomputed) (Int64.bits_of_float worst_slack))
  then
    corrupt "stored worst slack %.17g disagrees with recomputed timing %.17g" worst_slack
      recomputed;
  { Synthesis.netlist; timing; feasible; worst_slack; area; instances; sizer }
