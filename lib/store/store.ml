module Obs = Vartune_obs.Obs
module Fault = Vartune_fault.Fault

let src = Logs.Src.create "vartune.store" ~doc:"persistent artifact store"

module Log = (val Logs.src_log src : Logs.LOG)

let c_hit = Obs.Counter.make "store.hit"
let c_miss = Obs.Counter.make "store.miss"
let c_write = Obs.Counter.make "store.write"
let c_evict = Obs.Counter.make "store.evict"
let c_read_bytes = Obs.Counter.make "store.read_bytes"
let c_write_bytes = Obs.Counter.make "store.write_bytes"
let c_retry = Obs.Counter.make "store.retry"
let c_error = Obs.Counter.make "store.error"
let c_degraded = Obs.Counter.make "store.degraded"

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

module Key = struct
  (* The recipe accumulates into a plain string: every ingredient is
     labelled and typed, strings are length-prefixed, floats travel as
     bit patterns — two distinct recipes can never serialise to the
     same id.  The id itself is stored in the entry and compared on
     read, so the digest below only has to spread entries across file
     names, not guarantee uniqueness. *)
  type t = string

  let v stage = Printf.sprintf "v%d|%s" Codec.version stage
  let int t label value = Printf.sprintf "%s|%s=i:%d" t label value
  let bool t label value = Printf.sprintf "%s|%s=b:%b" t label value
  let float t label value = Printf.sprintf "%s|%s=f:%Lx" t label (Int64.bits_of_float value)

  let str t label value =
    Printf.sprintf "%s|%s=s%d:%s" t label (String.length value) value

  let floats t label values =
    let b = Buffer.create (String.length t + 32 + (Array.length values * 17)) in
    Buffer.add_string b t;
    Buffer.add_string b (Printf.sprintf "|%s=F%d:" label (Array.length values));
    Array.iter
      (fun v -> Buffer.add_string b (Printf.sprintf "%Lx," (Int64.bits_of_float v)))
      values;
    Buffer.contents b

  let id t = t

  (* FNV-1a 64 under two different offset bases: a 128-bit spread. *)
  let fnv1a64 seed s =
    String.fold_left
      (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) 0x100000001b3L)
      seed s

  let hex t =
    Printf.sprintf "%016Lx%016Lx"
      (fnv1a64 0xcbf29ce484222325L t)
      (fnv1a64 0x6c62272e07bb0142L t)
end

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | Io of { site : string; reason : string }
  | No_space of { site : string }
  | Locked
  | Disabled

let error_to_string = function
  | Io { site; reason } -> Printf.sprintf "I/O failure at %s: %s" site reason
  | No_space { site } -> Printf.sprintf "no space left on device at %s" site
  | Locked -> "entry locked by a live writer"
  | Disabled -> "store degraded to no-store mode"

(* ------------------------------------------------------------------ *)
(* Store handle                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  writes : int Atomic.t;
  evictions : int Atomic.t;
  read_bytes : int Atomic.t;
  written_bytes : int Atomic.t;
  retries : int Atomic.t;
  errors : int Atomic.t;
  consec_failures : int Atomic.t;
  is_degraded : bool Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  read_bytes : int;
  written_bytes : int;
  retries : int;
  errors : int;
  degraded : bool;
}

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    writes = Atomic.get t.writes;
    evictions = Atomic.get t.evictions;
    read_bytes = Atomic.get t.read_bytes;
    written_bytes = Atomic.get t.written_bytes;
    retries = Atomic.get t.retries;
    errors = Atomic.get t.errors;
    degraded = Atomic.get t.is_degraded;
  }

let degraded t = Atomic.get t.is_degraded
let dir t = t.root
let objects_dir t = Filename.concat t.root "objects"

let default_dir () =
  match Sys.getenv_opt "VARTUNE_STORE" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "vartune"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" ->
        Filename.concat (Filename.concat h ".cache") "vartune"
      | _ -> "_vartune_store"))

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Grace period after which another writer's lock (or an orphaned temp
   file) is considered abandoned — a crashed process, not a live one. *)
let stale_age_s = 120.0

let is_litter name =
  Filename.check_suffix name ".lock"
  || List.mem "tmp" (String.split_on_char '.' name)

let file_age path =
  match Unix.stat path with
  | { Unix.st_mtime; _ } -> Some (Unix.gettimeofday () -. st_mtime)
  | exception Unix.Unix_error _ -> None

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()
let readdir_quietly path = try Sys.readdir path with Sys_error _ -> [||]

let sweep_litter root =
  let objects = Filename.concat root "objects" in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat objects sub in
      if try Sys.is_directory subdir with Sys_error _ -> false then
        Array.iter
          (fun name ->
            if is_litter name then begin
              let path = Filename.concat subdir name in
              match file_age path with
              | Some age when age > stale_age_s ->
                Log.debug (fun m -> m "sweeping stale file %s" path);
                remove_quietly path
              | _ -> ()
            end)
          (readdir_quietly subdir))
    (readdir_quietly objects)

let open_dir root =
  mkdir_p (Filename.concat root "objects");
  sweep_litter root;
  {
    root;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    writes = Atomic.make 0;
    evictions = Atomic.make 0;
    read_bytes = Atomic.make 0;
    written_bytes = Atomic.make 0;
    retries = Atomic.make 0;
    errors = Atomic.make 0;
    consec_failures = Atomic.make 0;
    is_degraded = Atomic.make false;
  }

let open_default () = open_dir (default_dir ())

let entry_path t key =
  let hex = Key.hex key in
  Filename.concat (Filename.concat (objects_dir t) (String.sub hex 0 2)) (hex ^ ".vt")

(* ------------------------------------------------------------------ *)
(* Retry / degradation policy                                          *)
(* ------------------------------------------------------------------ *)

(* Transient faults (interrupted reads, flaky writes, lock hiccups) are
   retried a bounded number of times with exponential backoff; the
   jitter decorrelates concurrent retriers and is derived from a global
   counter, not the wall clock, so replay stays deterministic.  ENOSPC
   is persistent: no retry, the handle degrades immediately.  After
   [degrade_after] consecutive exhausted-retry failures the handle also
   degrades: loads report misses, saves become no-ops, the pipeline
   recomputes and completes without the accelerator. *)
let retry_attempts = 3
let degrade_after = 5
let backoff_base_s = 0.0005
let backoff_salt = Atomic.make 0

let backoff_s attempt =
  let salt = Atomic.fetch_and_add backoff_salt 1 in
  let h = Key.fnv1a64 0xcbf29ce484222325L (Printf.sprintf "%d.%d" attempt salt) in
  let jitter = Int64.to_float (Int64.logand h 0xffL) /. 255.0 in
  backoff_base_s *. (2.0 ** float_of_int attempt) *. (1.0 +. jitter)

let degrade t reason =
  if not (Atomic.exchange t.is_degraded true) then begin
    Obs.Counter.incr c_degraded;
    Log.warn (fun m ->
        m "store degraded to no-store mode (%s); the pipeline continues uncached" reason)
  end

let record_failure (t : t) error =
  Atomic.incr t.errors;
  Obs.Counter.incr c_error;
  match error with
  | No_space { site } -> degrade t (Printf.sprintf "%s: no space left on device" site)
  | Io { site; reason } ->
    let n = 1 + Atomic.fetch_and_add t.consec_failures 1 in
    Log.warn (fun m -> m "store %s failed after %d attempts: %s" site retry_attempts reason);
    if n >= degrade_after then
      degrade t (Printf.sprintf "%d consecutive I/O failures, last at %s" n site)
  | Locked | Disabled -> ()

let record_success (t : t) = Atomic.set t.consec_failures 0

(* Classifies one failed attempt.  [`Reraise] is for exceptions that do
   not look like I/O at all — caller bugs must not be eaten here. *)
let classify = function
  | Unix.Unix_error (Unix.ENOSPC, _, _) | Fault.Injected { point = Fault.Enospc; _ } ->
    `No_space
  | Fault.Injected { point; site; seq } ->
    `Transient
      (Printf.sprintf "injected %s fault at %s (occurrence %d)"
         (Fault.point_to_string point) site seq)
  | Unix.Unix_error (err, fn, _) ->
    `Transient (Printf.sprintf "%s in %s" (Unix.error_message err) fn)
  | Sys_error reason -> `Transient reason
  | _ -> `Reraise

let with_retries (t : t) ~site f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception exn -> (
      match classify exn with
      | `Reraise -> Printexc.raise_with_backtrace exn (Printexc.get_raw_backtrace ())
      | `No_space -> Error (No_space { site })
      | `Transient reason ->
        if attempt + 1 >= retry_attempts then Error (Io { site; reason })
        else begin
          Atomic.incr t.retries;
          Obs.Counter.incr c_retry;
          Log.debug (fun m ->
              m "%s attempt %d failed (%s); retrying" site (attempt + 1) reason);
          Unix.sleepf (backoff_s attempt);
          go (attempt + 1)
        end)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Entry framing                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "VTSTOR01"

(* 63 bits of FNV-1a are plenty for an integrity check, and storing the
   checksum through the codec's int path keeps the framing uniform. *)
let checksum payload = Int64.to_int (Key.fnv1a64 0xcbf29ce484222325L payload)

let frame key payload =
  let b = Buffer.create (String.length payload + 256) in
  Buffer.add_string b magic;
  Codec.w_int b Codec.version;
  Codec.w_string b (Key.id key);
  Codec.w_int b (checksum payload);
  Codec.w_string b payload;
  Buffer.contents b

(* Splits an entry file back into its payload, verifying every frame
   field.  Raises Codec.Corrupt on any inconsistency. *)
let unframe key contents =
  let mlen = String.length magic in
  if String.length contents < mlen then raise (Codec.Corrupt "entry shorter than magic");
  if String.sub contents 0 mlen <> magic then raise (Codec.Corrupt "bad magic");
  let r = Codec.reader (String.sub contents mlen (String.length contents - mlen)) in
  let version = Codec.r_int r in
  if version <> Codec.version then
    raise (Codec.Corrupt (Printf.sprintf "codec version %d (want %d)" version Codec.version));
  let stored_id = Codec.r_string r in
  let sum = Codec.r_int r in
  let payload = Codec.r_string r in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after payload");
  if stored_id <> Key.id key then
    raise (Codec.Corrupt "recipe mismatch (digest collision?)");
  if sum <> checksum payload then raise (Codec.Corrupt "payload checksum mismatch");
  payload

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

let evict (t : t) path reason =
  Atomic.incr t.evictions;
  Obs.Counter.incr c_evict;
  Log.warn (fun m -> m "evicting corrupt store entry %s (%s)" path reason);
  remove_quietly path

(* One read attempt.  ENOENT is a miss, not a failure; everything else
   raises and is classified by [with_retries]. *)
let read_entry path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        Fault.check Fault.Read ~site:"store.load.read";
        let len = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create len in
        let rec fill off =
          if off < len then begin
            let n = Unix.read fd buf off (len - off) in
            if n = 0 then raise (Unix.Unix_error (Unix.EIO, "read", path));
            fill (off + n)
          end
        in
        fill 0;
        Some (Bytes.unsafe_to_string buf))

let load_result (t : t) key decode =
  Obs.span "store.load" ~attrs:(fun () -> [ ("key", Key.id key) ]) @@ fun () ->
  if Atomic.get t.is_degraded then Error Disabled
  else begin
    let path = entry_path t key in
    let miss () =
      Atomic.incr t.misses;
      Obs.Counter.incr c_miss;
      Ok None
    in
    match with_retries t ~site:"store.load" (fun () -> read_entry path) with
    | Error e ->
      record_failure t e;
      Error e
    | Ok None -> miss ()
    | Ok (Some contents) -> (
      record_success t;
      match decode (Codec.reader (unframe key contents)) with
      | value ->
        Atomic.incr t.hits;
        ignore (Atomic.fetch_and_add t.read_bytes (String.length contents));
        Obs.Counter.incr c_hit;
        Obs.Counter.add c_read_bytes (String.length contents);
        Ok (Some value)
      | exception Codec.Corrupt reason ->
        evict t path reason;
        miss ()
      | exception (Invalid_argument reason | Failure reason) ->
        evict t path reason;
        miss ()
      | exception Not_found ->
        evict t path "decoder raised Not_found";
        miss ()
      | exception exn ->
        (* a decoder blowing up on adversarial bytes is still corruption;
           it must never escape as a crash *)
        evict t path (Printf.sprintf "decoder raised %s" (Printexc.to_string exn));
        miss ())
  end

let load (t : t) key decode =
  match load_result t key decode with Ok v -> v | Error _ -> None

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

(* Per-entry advisory lock.  Entries are content-addressed — two
   concurrent writers of the same key land identical bytes — so the
   lock only avoids duplicated write work; correctness comes from the
   atomic rename.  A lock older than [stale_age_s] belongs to a crashed
   writer and is broken. *)
let try_lock path =
  Fault.check Fault.Lock ~site:"store.save.lock";
  let lock = path ^ ".lock" in
  let acquire () =
    match Unix.openfile lock [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd ->
      Unix.close fd;
      true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  if acquire () then Some lock
  else
    match file_age lock with
    | Some age when age > stale_age_s ->
      Log.warn (fun m -> m "breaking stale store lock %s" lock);
      remove_quietly lock;
      if acquire () then Some lock else None
    | Some _ -> None
    | None ->
      (* the competing writer just finished; take over *)
      if acquire () then Some lock else None

let temp_counter = Atomic.make 0

(* One landing attempt: write a temp file, fsync, atomically rename.
   Cleans its temp file and raises on failure.  An injected
   partial-write lands a truncated entry *silently* — exercising the
   reader-side promise that corruption is evicted, never served. *)
let land_entry path framed =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add temp_counter 1)
  in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        Fault.check Fault.Enospc ~site:"store.save.write";
        Fault.check Fault.Write ~site:"store.save.write";
        let len =
          if Fault.fires Fault.Partial_write ~site:"store.save.write" then
            String.length framed / 2
          else String.length framed
        in
        let rec put off =
          if off < len then put (off + Unix.write_substring fd framed off (len - off))
        in
        put 0;
        Fault.check Fault.Fsync ~site:"store.save.fsync";
        Unix.fsync fd;
        len)
  with
  | len ->
    (match Fault.check Fault.Rename ~site:"store.save.rename"; Unix.rename tmp path with
    | () -> len
    | exception exn ->
      remove_quietly tmp;
      raise exn)
  | exception exn ->
    remove_quietly tmp;
    raise exn

let save_result (t : t) key encode =
  Obs.span "store.save" ~attrs:(fun () -> [ ("key", Key.id key) ]) @@ fun () ->
  if Atomic.get t.is_degraded then Error Disabled
  else begin
    let path = entry_path t key in
    let outcome =
      match
        with_retries t ~site:"store.save.lock" (fun () ->
            mkdir_p (Filename.dirname path);
            try_lock path)
      with
      | Error e -> Error e
      | Ok None -> Error Locked
      | Ok (Some lock) ->
        (* everything between acquisition and release — including the
           caller's [encode] — is under [Fun.protect]: a writer dying in
           its critical section cannot leave a permanent lock *)
        Fun.protect
          ~finally:(fun () -> remove_quietly lock)
          (fun () ->
            let framed =
              let payload = Buffer.create 65536 in
              encode payload;
              frame key (Buffer.contents payload)
            in
            with_retries t ~site:"store.save" (fun () -> land_entry path framed))
    in
    match outcome with
    | Ok written ->
      record_success t;
      Atomic.incr t.writes;
      ignore (Atomic.fetch_and_add t.written_bytes written);
      Obs.Counter.incr c_write;
      Obs.Counter.add c_write_bytes written;
      Log.debug (fun m -> m "stored %s (%d bytes)" path written);
      Ok ()
    | Error Locked ->
      Log.debug (fun m -> m "store entry %s locked by a live writer; skipping" path);
      Error Locked
    | Error e ->
      record_failure t e;
      Error e
  end

let save (t : t) key encode =
  match save_result t key encode with
  | Ok () | Error (Locked | Disabled | Io _ | No_space _) -> ()

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let fold_entries t f init =
  Array.fold_left
    (fun acc sub ->
      let subdir = Filename.concat (objects_dir t) sub in
      if not (try Sys.is_directory subdir with Sys_error _ -> false) then acc
      else
        Array.fold_left
          (fun acc name ->
            if Filename.check_suffix name ".vt" then f acc (Filename.concat subdir name)
            else acc)
          acc (readdir_quietly subdir))
    init
    (readdir_quietly (objects_dir t))

let entry_count t = fold_entries t (fun acc _ -> acc + 1) 0

let total_bytes t =
  fold_entries t
    (fun acc path ->
      match Unix.stat path with
      | { Unix.st_size; _ } -> acc + st_size
      | exception Unix.Unix_error _ -> acc)
    0

let wipe t = fold_entries t (fun () path -> remove_quietly path) ()
