(** Serialiser for the liberty-like text format; inverse of {!Parser}. *)

val pp_library : Format.formatter -> Library.t -> unit

val to_string : Library.t -> string

val write_file : string -> Library.t -> unit
(** Writes the library to the given path. *)
