(** Tokeniser for the liberty-like text format. *)

type token =
  | Ident of string
  | Number of float
  | String of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Comma
  | Eof

exception Error of { line : int; message : string }

val tokenize : string -> token list
(** Tokenises a whole document.  Comments ([/* ... */] and [// ...]) and
    whitespace are skipped.  Raises {!Error} on malformed input. *)

val token_to_string : token -> string
