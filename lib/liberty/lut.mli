(** Two-dimensional timing look-up tables (NLDM style).

    A table maps an (input slew, output load) operating point to a value —
    a delay, an output transition, or, in statistical libraries, the
    standard deviation of a delay.  Rows follow the slew axis, columns the
    load axis, matching the paper's Fig. 3. *)

type t

val make : slews:float array -> loads:float array -> values:Vartune_util.Grid.t -> t
(** Builds a table.  Both axes must be strictly increasing and match the
    grid dimensions ([rows = |slews|], [cols = |loads|]).
    Raises [Invalid_argument] otherwise. *)

val of_fn : slews:float array -> loads:float array -> (slew:float -> load:float -> float) -> t
(** Tabulates a function over the axis cross-product. *)

val slews : t -> float array
(** Slew (row) axis values; fresh copy. *)

val loads : t -> float array
(** Load (column) axis values; fresh copy. *)

val values : t -> Vartune_util.Grid.t
(** Underlying grid (shared, do not mutate). *)

val dims : t -> int * int
(** [(rows, cols)] = [(slew points, load points)]. *)

val get : t -> int -> int -> float
(** [get t i j] is the value at slew index [i], load index [j]. *)

val lookup : t -> slew:float -> load:float -> float
(** Bilinear interpolation (paper eqs. 2–4).  Points outside the table are
    linearly extrapolated from the outermost segment, as production timers
    do. *)

val lookup_clamped : t -> slew:float -> load:float -> float
(** Like {!lookup} but the query point is first clamped into the table's
    axis ranges — no extrapolation. *)

val lookup_max2 : t -> t -> slew:float -> load:float -> float
(** [lookup_max2 a b ~slew ~load] is
    [Float.max (lookup a ...) (lookup b ...)] computed with a single
    fused segment search over [a]'s axes — the worst-edge shape of
    rise/fall delay and transition queries.  The caller guarantees the
    two tables share axes (true for any pair from one arc, which
    {!Arc.make} enforces); each component is bit-identical to the
    plain {!lookup}. *)

val lookup_min2 : t -> t -> slew:float -> load:float -> float
(** Best-edge counterpart of {!lookup_max2} ([Float.min]); same axis
    contract. *)

val lookup4_into : t -> t -> t -> t -> slew:float -> load:float -> out:float array -> unit
(** [lookup4_into a b c d ~slew ~load ~out] interpolates four same-axes
    tables — an arc's rise/fall delay and rise/fall transition — with
    one segment search, writing table [k]'s value to [out.(k)]
    (length >= 4, caller scratch; nothing is allocated).  Same axis
    contract and bit-exactness as {!lookup_max2}. *)

val map : (float -> float) -> t -> t
(** Pointwise transformation; axes preserved. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination; requires identical axes.
    Raises [Invalid_argument] on mismatch. *)

val max_equivalent : t list -> t
(** Pointwise maximum over a non-empty list of same-axes tables — the
    "maximum equivalent LUT" of the paper's Sections VI-B/VI-C. *)

val merge : t list -> f:(float array -> float) -> t
(** [merge ts ~f] reduces the per-entry value vector across a non-empty
    list of same-axes tables with [f] — the statistical-library merge of
    Section IV (e.g. [f = Stat.mean] or [f = Stat.stddev]). *)

val same_axes : t -> t -> bool
(** Whether two tables share both axes exactly, compared entry-wise on
    IEEE-754 bit patterns: NaN equals NaN, [-0.0] differs from [0.0].
    (Structural [=] would box every element and call a NaN-carrying
    axis unequal to itself.) *)

val equal : ?eps:float -> t -> t -> bool
(** Axes equal exactly and values within [eps] (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
