(** Parser for the liberty-like text format.

    [parse] is the inverse of {!Printer.to_string}: for every library [l],
    [parse (Printer.to_string l)] reconstructs [l]. *)

exception Error of string

val parse_group : string -> Ast.group
(** Parses a document into its top-level group.  Raises {!Error} or
    {!Lexer.Error}. *)

val library_of_ast : Ast.group -> Library.t
(** Semantic elaboration of a [library(...) { ... }] group.
    Raises {!Error} on missing or ill-typed fields. *)

val parse : string -> Library.t
(** [parse src = library_of_ast (parse_group src)]. *)

val parse_file : string -> Library.t
(** Reads and parses a file. *)
