(** Generic syntax tree for the liberty-like text format.

    The format mirrors Liberty's structure: nested named groups with
    optional arguments, simple attributes ([name : value ;]) and complex
    attributes ([name("...", "...") ;]). *)

type value = Number of float | String of string | Ident of string

type group = {
  gname : string;  (** e.g. ["library"], ["cell"], ["timing"] *)
  args : string list;  (** e.g. the cell name in [cell(ND2_1)] *)
  attrs : (string * value) list;  (** simple attributes, in order *)
  complex : (string * value list) list;  (** complex attributes, in order *)
  groups : group list;  (** child groups, in order *)
}

val attr : group -> string -> value option
(** First simple attribute with the given name. *)

val attr_string : group -> string -> string option
(** Attribute as a string (accepts [String] and [Ident]). *)

val attr_float : group -> string -> float option

val attr_int : group -> string -> int option

val complex_values : group -> string -> value list option
(** First complex attribute with the given name. *)

val child_groups : group -> string -> group list
(** All child groups with the given name, in order. *)

val float_list_of_values : value list -> float array
(** Flattens complex-attribute values into floats: numbers pass through and
    strings are split on commas/whitespace, as liberty's
    [index_1("0.1, 0.2")] requires.  Raises [Failure] on malformed input. *)

val pp_value : Format.formatter -> value -> unit
