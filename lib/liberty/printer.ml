(* Shortest decimal representation that round-trips the float exactly —
   the shared repository convention. *)
let float_repr = Vartune_util.Floatfmt.repr

let pp_axis ppf axis =
  let parts = Array.to_list (Array.map (float_repr) axis) in
  Format.fprintf ppf "\"%s\"" (String.concat ", " parts)

let pp_table ppf name lut =
  Format.fprintf ppf "@[<v 2>%s() {@," name;
  Format.fprintf ppf "index_1(%a);@," pp_axis (Lut.slews lut);
  Format.fprintf ppf "index_2(%a);@," pp_axis (Lut.loads lut);
  let rows, cols = Lut.dims lut in
  Format.fprintf ppf "@[<v 2>values(";
  for i = 0 to rows - 1 do
    if i > 0 then Format.fprintf ppf ",@,";
    let cells = List.init cols (fun j -> float_repr (Lut.get lut i j)) in
    Format.fprintf ppf "\"%s\"" (String.concat ", " cells)
  done;
  Format.fprintf ppf ");@]";
  Format.fprintf ppf "@]@,}"

let pp_arc ppf (arc : Arc.t) =
  Format.fprintf ppf "@[<v 2>timing() {@,";
  Format.fprintf ppf "related_pin : \"%s\";@," arc.related_pin;
  Format.fprintf ppf "timing_sense : %s;@," (Arc.sense_to_string arc.sense);
  pp_table ppf "cell_rise" arc.rise_delay;
  Format.pp_print_cut ppf ();
  pp_table ppf "cell_fall" arc.fall_delay;
  Format.pp_print_cut ppf ();
  pp_table ppf "rise_transition" arc.rise_transition;
  Format.pp_print_cut ppf ();
  pp_table ppf "fall_transition" arc.fall_transition;
  Option.iter
    (fun lut ->
      Format.pp_print_cut ppf ();
      pp_table ppf "cell_rise_sigma" lut)
    arc.rise_delay_sigma;
  Option.iter
    (fun lut ->
      Format.pp_print_cut ppf ();
      pp_table ppf "cell_fall_sigma" lut)
    arc.fall_delay_sigma;
  Option.iter
    (fun lut ->
      Format.pp_print_cut ppf ();
      pp_table ppf "internal_power" lut)
    arc.internal_power;
  Format.fprintf ppf "@]@,}"

let pp_pin ppf (pin : Pin.t) =
  Format.fprintf ppf "@[<v 2>pin(%s) {@," pin.name;
  Format.fprintf ppf "direction : %s;" (Pin.direction_to_string pin.direction);
  (match pin.direction with
  | Pin.Input -> Format.fprintf ppf "@,capacitance : %s;" (float_repr pin.capacitance)
  | Pin.Output ->
    Option.iter (fun m -> Format.fprintf ppf "@,max_capacitance : %s;" (float_repr m)) pin.max_capacitance;
    List.iter
      (fun arc ->
        Format.pp_print_cut ppf ();
        pp_arc ppf arc)
      pin.arcs);
  Format.fprintf ppf "@]@,}"

let pp_cell ppf (cell : Cell.t) =
  Format.fprintf ppf "@[<v 2>cell(%s) {@," cell.name;
  Format.fprintf ppf "family : \"%s\";@," cell.family;
  Format.fprintf ppf "drive_strength : %d;@," cell.drive_strength;
  Format.fprintf ppf "kind : \"%s\";@," (Cell.kind_to_string cell.kind);
  Format.fprintf ppf "area : %s;@," (float_repr cell.area);
  Format.fprintf ppf "cell_leakage_power : %s;" (float_repr cell.leakage);
  if Cell.is_sequential cell then begin
    Format.fprintf ppf "@,setup_time : %s;" (float_repr cell.setup_time);
    Format.fprintf ppf "@,hold_time : %s;" (float_repr cell.hold_time);
    Option.iter (fun p -> Format.fprintf ppf "@,clock_pin : \"%s\";" p) cell.clock_pin
  end;
  List.iter
    (fun pin ->
      Format.pp_print_cut ppf ();
      pp_pin ppf pin)
    cell.pins;
  Format.fprintf ppf "@]@,}"

let pp_library ppf lib =
  Format.fprintf ppf "@[<v 2>library(%s) {@," (Library.name lib);
  Format.fprintf ppf "corner : \"%s\";" (Library.corner lib);
  List.iter
    (fun cell ->
      Format.pp_print_cut ppf ();
      pp_cell ppf cell)
    (Library.cells lib);
  Format.fprintf ppf "@]@,}@."

let to_string lib = Format.asprintf "%a" pp_library lib

let write_file path lib =
  let oc = open_out_bin path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_library ppf lib;
  Format.pp_print_flush ppf ();
  close_out oc
