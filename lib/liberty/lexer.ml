type token =
  | Ident of string
  | Number of float
  | String of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Comma
  | Eof

exception Error of { line : int; message : string }

let error line message = raise (Error { line; message })

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '!' || c = '[' || c = ']'

let is_digit c = c >= '0' && c <= '9'

let is_number_start src i =
  let c = src.[i] in
  is_digit c
  || ((c = '-' || c = '+') && i + 1 < String.length src && (is_digit src.[i + 1] || src.[i + 1] = '.'))
  || (c = '.' && i + 1 < String.length src && is_digit src.[i + 1])

(* A number may continue with digits and '.', plus one exponent in any
   of the spellings commercial characterisers emit: e/E marker with an
   optional explicit sign (1.2E+03, 4.7e-12, 1E3).  The marker is part
   of the number only when digits actually follow it — "3EFF" is the
   number 3 followed by the identifier EFF, not a malformed float. *)
let number_end src i =
  let n = String.length src in
  let rec go j seen_exp =
    if j >= n then j
    else begin
      let c = src.[j] in
      if is_digit c || c = '.' then go (j + 1) seen_exp
      else if (c = 'e' || c = 'E') && not seen_exp then begin
        let k = if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2 else j + 1 in
        if k < n && is_digit src.[k] then go (k + 1) true else j
      end
      else j
    end
  in
  go (i + 1) false

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else begin
      match src.[i] with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' | '\\' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then error !line "unterminated comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '(' ->
        push Lparen;
        go (i + 1)
      | ')' ->
        push Rparen;
        go (i + 1)
      | '{' ->
        push Lbrace;
        go (i + 1)
      | '}' ->
        push Rbrace;
        go (i + 1)
      | ':' ->
        push Colon;
        go (i + 1)
      | ';' ->
        push Semi;
        go (i + 1)
      | ',' ->
        push Comma;
        go (i + 1)
      | '"' ->
        let rec find j =
          if j >= n then error !line "unterminated string"
          else if src.[j] = '"' then j
          else begin
            if src.[j] = '\n' then incr line;
            find (j + 1)
          end
        in
        let close = find (i + 1) in
        push (String (String.sub src (i + 1) (close - i - 1)));
        go (close + 1)
      | c when is_number_start src i ->
        ignore c;
        let stop = number_end src i in
        let text = String.sub src i (stop - i) in
        (match float_of_string_opt text with
        | Some f -> push (Number f)
        | None -> error !line (Printf.sprintf "bad number %S" text));
        go stop
      | c when is_ident_char c ->
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        push (Ident (String.sub src i (j - i)));
        go j
      | c -> error !line (Printf.sprintf "unexpected character %C" c)
    end
  in
  go 0;
  List.rev (Eof :: !toks)

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Number f -> Printf.sprintf "number %g" f
  | String s -> Printf.sprintf "string %S" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Colon -> "':'"
  | Semi -> "';'"
  | Comma -> "','"
  | Eof -> "end of input"
