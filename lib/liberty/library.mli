(** A timing library: a named set of characterised cells at one process
    corner. *)

type t

val make : name:string -> corner:string -> cells:Cell.t list -> t
(** Raises [Invalid_argument] on duplicate cell names. *)

val name : t -> string
val corner : t -> string

val cells : t -> Cell.t list
(** In insertion order. *)

val size : t -> int

val find : t -> string -> Cell.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Cell.t option

val mem : t -> string -> bool

val families : t -> string list
(** Distinct cell families, sorted. *)

val family_members : t -> string -> Cell.t list
(** Cells of one family, sorted by drive strength. *)

val drive_cluster : t -> int -> Cell.t list
(** All cells with the given drive strength. *)

val filter : t -> f:(Cell.t -> bool) -> t
(** Sub-library keeping cells satisfying [f]. *)

val map_cells : t -> f:(Cell.t -> Cell.t) -> t
(** Rebuilds the library transforming every cell. *)

val total_area : t -> float
