type sense = Positive_unate | Negative_unate | Non_unate

type t = {
  related_pin : string;
  sense : sense;
  rise_delay : Lut.t;
  fall_delay : Lut.t;
  rise_transition : Lut.t;
  fall_transition : Lut.t;
  rise_delay_sigma : Lut.t option;
  fall_delay_sigma : Lut.t option;
  internal_power : Lut.t option;
}

let make ~related_pin ~sense ~rise_delay ~fall_delay ~rise_transition ~fall_transition
    ?rise_delay_sigma ?fall_delay_sigma ?internal_power () =
  let check t =
    if not (Lut.same_axes rise_delay t) then invalid_arg "Arc.make: table axis mismatch"
  in
  check fall_delay;
  check rise_transition;
  check fall_transition;
  Option.iter check rise_delay_sigma;
  Option.iter check fall_delay_sigma;
  Option.iter check internal_power;
  { related_pin; sense; rise_delay; fall_delay; rise_transition; fall_transition;
    rise_delay_sigma; fall_delay_sigma; internal_power }

let worst_delay t = Lut.max_equivalent [ t.rise_delay; t.fall_delay ]
let worst_transition t = Lut.max_equivalent [ t.rise_transition; t.fall_transition ]

let worst_sigma t =
  match (t.rise_delay_sigma, t.fall_delay_sigma) with
  | Some r, Some f -> Some (Lut.max_equivalent [ r; f ])
  | Some r, None -> Some r
  | None, Some f -> Some f
  | None, None -> None

let delay t ~slew ~load =
  Float.max (Lut.lookup t.rise_delay ~slew ~load) (Lut.lookup t.fall_delay ~slew ~load)

let min_delay t ~slew ~load =
  Float.min (Lut.lookup t.rise_delay ~slew ~load) (Lut.lookup t.fall_delay ~slew ~load)

let transition t ~slew ~load =
  Float.max (Lut.lookup t.rise_transition ~slew ~load) (Lut.lookup t.fall_transition ~slew ~load)

let sigma t ~slew ~load =
  let look = function None -> 0.0 | Some lut -> Lut.lookup lut ~slew ~load in
  Float.max (look t.rise_delay_sigma) (look t.fall_delay_sigma)

let has_sigma t = Option.is_some t.rise_delay_sigma || Option.is_some t.fall_delay_sigma

let energy t ~slew ~load =
  match t.internal_power with
  | None -> 0.0
  | Some lut -> Lut.lookup lut ~slew ~load

let sense_to_string = function
  | Positive_unate -> "positive_unate"
  | Negative_unate -> "negative_unate"
  | Non_unate -> "non_unate"

let sense_of_string = function
  | "positive_unate" -> Some Positive_unate
  | "negative_unate" -> Some Negative_unate
  | "non_unate" -> Some Non_unate
  | _ -> None
