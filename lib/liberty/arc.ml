type sense = Positive_unate | Negative_unate | Non_unate

type t = {
  related_pin : string;
  sense : sense;
  rise_delay : Lut.t;
  fall_delay : Lut.t;
  rise_transition : Lut.t;
  fall_transition : Lut.t;
  rise_delay_sigma : Lut.t option;
  fall_delay_sigma : Lut.t option;
  internal_power : Lut.t option;
}

let make ~related_pin ~sense ~rise_delay ~fall_delay ~rise_transition ~fall_transition
    ?rise_delay_sigma ?fall_delay_sigma ?internal_power () =
  let check t =
    if not (Lut.same_axes rise_delay t) then invalid_arg "Arc.make: table axis mismatch"
  in
  check fall_delay;
  check rise_transition;
  check fall_transition;
  Option.iter check rise_delay_sigma;
  Option.iter check fall_delay_sigma;
  Option.iter check internal_power;
  { related_pin; sense; rise_delay; fall_delay; rise_transition; fall_transition;
    rise_delay_sigma; fall_delay_sigma; internal_power }

let worst_delay t = Lut.max_equivalent [ t.rise_delay; t.fall_delay ]
let worst_transition t = Lut.max_equivalent [ t.rise_transition; t.fall_transition ]

let worst_sigma t =
  match (t.rise_delay_sigma, t.fall_delay_sigma) with
  | Some r, Some f -> Some (Lut.max_equivalent [ r; f ])
  | Some r, None -> Some r
  | None, Some f -> Some f
  | None, None -> None

(* [make] pinned every table to [rise_delay]'s axes, so the fused
   two-table lookups below run one segment search per query instead of
   two; each component is bit-identical to a plain Lut.lookup. *)
let delay t ~slew ~load = Lut.lookup_max2 t.rise_delay t.fall_delay ~slew ~load
let min_delay t ~slew ~load = Lut.lookup_min2 t.rise_delay t.fall_delay ~slew ~load
let transition t ~slew ~load = Lut.lookup_max2 t.rise_transition t.fall_transition ~slew ~load

(* One-shot evaluation for the STA inner loop: a single segment search
   serves all four surfaces, and the three derived quantities land in
   caller scratch — nothing allocates.  [min_delay] falls out of the
   same two interpolations as [delay], so computing it unconditionally
   is free. *)
let eval_into t ~slew ~load ~out =
  if Array.length out < 4 then invalid_arg "Arc.eval_into: out too short";
  Lut.lookup4_into t.rise_delay t.fall_delay t.rise_transition t.fall_transition ~slew ~load
    ~out;
  let rd = Array.unsafe_get out 0 and fd = Array.unsafe_get out 1 in
  let rt = Array.unsafe_get out 2 and ft = Array.unsafe_get out 3 in
  Array.unsafe_set out 0 (Float.max rd fd);
  Array.unsafe_set out 1 (Float.min rd fd);
  Array.unsafe_set out 2 (Float.max rt ft)

let sigma t ~slew ~load =
  let look = function None -> 0.0 | Some lut -> Lut.lookup lut ~slew ~load in
  Float.max (look t.rise_delay_sigma) (look t.fall_delay_sigma)

let has_sigma t = Option.is_some t.rise_delay_sigma || Option.is_some t.fall_delay_sigma

let energy t ~slew ~load =
  match t.internal_power with
  | None -> 0.0
  | Some lut -> Lut.lookup lut ~slew ~load

let sense_to_string = function
  | Positive_unate -> "positive_unate"
  | Negative_unate -> "negative_unate"
  | Non_unate -> "non_unate"

let sense_of_string = function
  | "positive_unate" -> Some Positive_unate
  | "negative_unate" -> Some Negative_unate
  | "non_unate" -> Some Non_unate
  | _ -> None
