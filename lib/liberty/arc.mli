(** A timing arc: one input-pin → output-pin propagation path of a cell.

    Each arc carries four nominal tables (rise/fall delay, rise/fall output
    transition).  In a statistical library the delay tables are accompanied
    by sigma tables holding the per-entry standard deviation of the delay
    under local variation (Section IV of the paper). *)

type sense = Positive_unate | Negative_unate | Non_unate

type t = {
  related_pin : string;  (** name of the triggering input pin *)
  sense : sense;
  rise_delay : Lut.t;
  fall_delay : Lut.t;
  rise_transition : Lut.t;
  fall_transition : Lut.t;
  rise_delay_sigma : Lut.t option;  (** statistical libraries only *)
  fall_delay_sigma : Lut.t option;
  internal_power : Lut.t option;
  (** internal (short-circuit + internal-node) energy per output
      transition, fJ, over the same (slew, load) grid *)
}

val make :
  related_pin:string ->
  sense:sense ->
  rise_delay:Lut.t ->
  fall_delay:Lut.t ->
  rise_transition:Lut.t ->
  fall_transition:Lut.t ->
  ?rise_delay_sigma:Lut.t ->
  ?fall_delay_sigma:Lut.t ->
  ?internal_power:Lut.t ->
  unit ->
  t
(** Builds an arc; all tables must share axes.
    Raises [Invalid_argument] otherwise. *)

val worst_delay : t -> Lut.t
(** Pointwise max of rise and fall delay. *)

val worst_transition : t -> Lut.t
(** Pointwise max of rise and fall output transition. *)

val worst_sigma : t -> Lut.t option
(** Pointwise max of the sigma tables, when present. *)

val delay : t -> slew:float -> load:float -> float
(** Worst-case (max of rise/fall) interpolated delay. *)

val min_delay : t -> slew:float -> load:float -> float
(** Best-case (min of rise/fall) interpolated delay — used by hold
    analysis. *)

val transition : t -> slew:float -> load:float -> float
(** Worst-case interpolated output transition. *)

val eval_into : t -> slew:float -> load:float -> out:float array -> unit
(** One-shot arc evaluation for the STA inner loop: a single fused
    segment search over the arc's shared axes computes all four
    surfaces, leaving [out.(0) = delay], [out.(1) = min_delay] and
    [out.(2) = transition] — each bit-identical to the corresponding
    scalar query above.  [out] must have length >= 4 ([out.(3)] is
    internal scratch); it is caller-owned so repeated evaluation
    allocates nothing.  Raises [Invalid_argument] if [out] is too
    short. *)

val sigma : t -> slew:float -> load:float -> float
(** Worst-case interpolated delay sigma; [0.] for nominal libraries. *)

val has_sigma : t -> bool

val energy : t -> slew:float -> load:float -> float
(** Interpolated internal energy per transition, fJ; [0.] when the
    library carries no power tables. *)

val sense_to_string : sense -> string
val sense_of_string : string -> sense option
