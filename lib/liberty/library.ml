type t = {
  name : string;
  corner : string;
  cells : Cell.t list;
  by_name : (string, Cell.t) Hashtbl.t;
}

let make ~name ~corner ~cells =
  let by_name = Hashtbl.create (List.length cells) in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Library.make: duplicate cell %s" c.name);
      Hashtbl.add by_name c.name c)
    cells;
  { name; corner; cells; by_name }

let name t = t.name
let corner t = t.corner
let cells t = t.cells
let size t = List.length t.cells
let find t cell_name = Hashtbl.find t.by_name cell_name
let find_opt t cell_name = Hashtbl.find_opt t.by_name cell_name
let mem t cell_name = Hashtbl.mem t.by_name cell_name

let families t =
  List.sort_uniq String.compare (List.map (fun (c : Cell.t) -> c.family) t.cells)

let family_members t family =
  t.cells
  |> List.filter (fun (c : Cell.t) -> c.family = family)
  |> List.sort (fun (a : Cell.t) (b : Cell.t) -> compare a.drive_strength b.drive_strength)

let drive_cluster t strength =
  List.filter (fun (c : Cell.t) -> c.drive_strength = strength) t.cells

let filter t ~f = make ~name:t.name ~corner:t.corner ~cells:(List.filter f t.cells)
let map_cells t ~f = make ~name:t.name ~corner:t.corner ~cells:(List.map f t.cells)
let total_area t = List.fold_left (fun acc (c : Cell.t) -> acc +. c.area) 0.0 t.cells
