type value = Number of float | String of string | Ident of string

type group = {
  gname : string;
  args : string list;
  attrs : (string * value) list;
  complex : (string * value list) list;
  groups : group list;
}

let attr g name = List.assoc_opt name g.attrs

let attr_string g name =
  match attr g name with
  | Some (String s) | Some (Ident s) -> Some s
  | Some (Number _) | None -> None

let attr_float g name =
  match attr g name with
  | Some (Number f) -> Some f
  | Some (String s) | Some (Ident s) -> float_of_string_opt s
  | None -> None

let attr_int g name = Option.map int_of_float (attr_float g name)
let complex_values g name = List.assoc_opt name g.complex
let child_groups g name = List.filter (fun c -> c.gname = name) g.groups

let split_floats s =
  s
  |> String.split_on_char ','
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match float_of_string_opt tok with
           | Some f -> Some f
           | None -> failwith (Printf.sprintf "Ast: not a number: %S" tok))

let float_list_of_values values =
  values
  |> List.concat_map (function
       | Number f -> [ f ]
       | String s | Ident s -> split_floats s)
  |> Array.of_list

let pp_value ppf = function
  | Number f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Ident s -> Format.pp_print_string ppf s
