type direction = Input | Output

type t = {
  name : string;
  direction : direction;
  capacitance : float;
  max_capacitance : float option;
  arcs : Arc.t list;
}

let input ~name ~capacitance =
  { name; direction = Input; capacitance; max_capacitance = None; arcs = [] }

let output ~name ?max_capacitance ~arcs () =
  { name; direction = Output; capacitance = 0.0; max_capacitance; arcs }

let is_output t = t.direction = Output
let is_input t = t.direction = Input

let find_arc t ~related_pin =
  List.find_opt (fun (arc : Arc.t) -> arc.related_pin = related_pin) t.arcs

let direction_to_string = function Input -> "input" | Output -> "output"

let direction_of_string = function
  | "input" -> Some Input
  | "output" -> Some Output
  | _ -> None
