(** Cell pins. *)

type direction = Input | Output

type t = {
  name : string;
  direction : direction;
  capacitance : float;  (** input capacitance presented to the driving net *)
  max_capacitance : float option;  (** output drive limit, outputs only *)
  arcs : Arc.t list;  (** timing arcs ending at this pin; outputs only *)
}

val input : name:string -> capacitance:float -> t
(** An input pin with no arcs. *)

val output : name:string -> ?max_capacitance:float -> arcs:Arc.t list -> unit -> t
(** An output pin.  Output pins present no load ([capacitance = 0.]). *)

val is_output : t -> bool
val is_input : t -> bool

val find_arc : t -> related_pin:string -> Arc.t option
(** Arc triggered by the named input pin, if any. *)

val direction_to_string : direction -> string
val direction_of_string : string -> direction option
