(** Characterised standard cells.

    Cell names follow the paper's appendix convention:
    ["<FUNC><inputs>_<special>_<drive>"], e.g. [ND2_4] is a 2-input NAND of
    drive strength 4 and [NR2B_1] a 2-input NOR variant of drive 1. *)

type kind = Combinational | Flip_flop | Latch

type t = {
  name : string;
  family : string;  (** function family, e.g. ["ND2"], shared by a drive ladder *)
  drive_strength : int;
  kind : kind;
  area : float;  (** µm² *)
  pins : Pin.t list;
  setup_time : float;  (** sequential cells; [0.] otherwise *)
  hold_time : float;
  clock_pin : string option;  (** sequential cells *)
  leakage : float;  (** static leakage power, nW *)
}

val make :
  name:string ->
  family:string ->
  drive_strength:int ->
  kind:kind ->
  area:float ->
  pins:Pin.t list ->
  ?setup_time:float ->
  ?hold_time:float ->
  ?clock_pin:string ->
  ?leakage:float ->
  unit ->
  t

val input_pins : t -> Pin.t list
(** Input pins excluding the clock pin. *)

val data_input_names : t -> string list

val output_pins : t -> Pin.t list

val find_pin : t -> string -> Pin.t option

val arcs : t -> Arc.t list
(** All arcs of all output pins. *)

val input_capacitance : t -> string -> float
(** Capacitance of the named input pin.  Raises [Not_found] if absent. *)

val max_load : t -> float
(** Smallest [max_capacitance] across output pins; [infinity] if none set. *)

val is_sequential : t -> bool

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
