type kind = Combinational | Flip_flop | Latch

type t = {
  name : string;
  family : string;
  drive_strength : int;
  kind : kind;
  area : float;
  pins : Pin.t list;
  setup_time : float;
  hold_time : float;
  clock_pin : string option;
  leakage : float;
}

let make ~name ~family ~drive_strength ~kind ~area ~pins ?(setup_time = 0.0)
    ?(hold_time = 0.0) ?clock_pin ?(leakage = 0.0) () =
  if drive_strength <= 0 then invalid_arg "Cell.make: drive strength must be positive";
  if area < 0.0 then invalid_arg "Cell.make: negative area";
  { name; family; drive_strength; kind; area; pins; setup_time; hold_time; clock_pin;
    leakage }

let input_pins t =
  List.filter
    (fun (p : Pin.t) -> Pin.is_input p && Some p.name <> t.clock_pin)
    t.pins

let data_input_names t = List.map (fun (p : Pin.t) -> p.name) (input_pins t)
let output_pins t = List.filter Pin.is_output t.pins
let find_pin t name = List.find_opt (fun (p : Pin.t) -> p.name = name) t.pins
let arcs t = List.concat_map (fun (p : Pin.t) -> p.arcs) (output_pins t)

let input_capacitance t name =
  match find_pin t name with
  | Some p when Pin.is_input p -> p.capacitance
  | Some _ | None -> raise Not_found

let max_load t =
  List.fold_left
    (fun acc (p : Pin.t) ->
      match p.max_capacitance with None -> acc | Some m -> Float.min acc m)
    infinity (output_pins t)

let is_sequential t = t.kind <> Combinational

let kind_to_string = function
  | Combinational -> "combinational"
  | Flip_flop -> "flip_flop"
  | Latch -> "latch"

let kind_of_string = function
  | "combinational" -> Some Combinational
  | "flip_flop" -> Some Flip_flop
  | "latch" -> Some Latch
  | _ -> None
