exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Syntactic layer: tokens -> Ast.group                                *)
(* ------------------------------------------------------------------ *)

let expect tok = function
  | t :: rest when t = tok -> rest
  | t :: _ -> fail "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string t)
  | [] -> fail "expected %s, found nothing" (Lexer.token_to_string tok)

let parse_value = function
  | Lexer.Number f :: rest -> (Ast.Number f, rest)
  | Lexer.String s :: rest -> (Ast.String s, rest)
  | Lexer.Ident s :: rest -> (Ast.Ident s, rest)
  | t :: _ -> fail "expected a value, found %s" (Lexer.token_to_string t)
  | [] -> fail "expected a value, found nothing"

let rec parse_value_list acc toks =
  match toks with
  | Lexer.Rparen :: rest -> (List.rev acc, rest)
  | _ ->
    let v, rest = parse_value toks in
    (match rest with
    | Lexer.Comma :: rest' -> parse_value_list (v :: acc) rest'
    | Lexer.Rparen :: rest' -> (List.rev (v :: acc), rest')
    | t :: _ -> fail "expected ',' or ')', found %s" (Lexer.token_to_string t)
    | [] -> fail "unterminated value list")

let string_of_value = function
  | Ast.Number f -> Printf.sprintf "%g" f
  | Ast.String s | Ast.Ident s -> s

(* A group body is a sequence of simple attributes, complex attributes and
   child groups, closed by '}'. *)
let rec parse_body ~gname ~args attrs complex groups toks =
  match toks with
  | Lexer.Rbrace :: rest ->
    ( { Ast.gname; args; attrs = List.rev attrs; complex = List.rev complex;
        groups = List.rev groups },
      rest )
  | Lexer.Ident name :: Lexer.Colon :: rest ->
    let v, rest = parse_value rest in
    let rest = expect Lexer.Semi rest in
    parse_body ~gname ~args ((name, v) :: attrs) complex groups rest
  | Lexer.Ident name :: Lexer.Lparen :: rest -> begin
    let values, rest = parse_value_list [] rest in
    match rest with
    | Lexer.Semi :: rest' ->
      parse_body ~gname ~args attrs ((name, values) :: complex) groups rest'
    | Lexer.Lbrace :: rest' ->
      let child, rest'' =
        parse_body ~gname:name ~args:(List.map string_of_value values) [] [] [] rest'
      in
      parse_body ~gname ~args attrs complex (child :: groups) rest''
    | t :: _ -> fail "expected ';' or '{' after %s(...), found %s" name (Lexer.token_to_string t)
    | [] -> fail "unexpected end of input after %s(...)" name
  end
  | t :: _ -> fail "unexpected %s in group %s" (Lexer.token_to_string t) gname
  | [] -> fail "unterminated group %s" gname

let parse_group src =
  match Lexer.tokenize src with
  | Lexer.Ident gname :: Lexer.Lparen :: rest ->
    let values, rest = parse_value_list [] rest in
    let rest = expect Lexer.Lbrace rest in
    let group, rest =
      parse_body ~gname ~args:(List.map string_of_value values) [] [] [] rest
    in
    (match rest with
    | [ Lexer.Eof ] | [] -> group
    | t :: _ -> fail "trailing input after top-level group: %s" (Lexer.token_to_string t))
  | t :: _ -> fail "expected a top-level group, found %s" (Lexer.token_to_string t)
  | [] -> fail "empty input"

(* ------------------------------------------------------------------ *)
(* Semantic layer: Ast.group -> Library.t                              *)
(* ------------------------------------------------------------------ *)

let required_string g name =
  match Ast.attr_string g name with
  | Some s -> s
  | None -> fail "group %s: missing attribute %s" g.Ast.gname name

let required_float g name =
  match Ast.attr_float g name with
  | Some f -> f
  | None -> fail "group %s: missing numeric attribute %s" g.Ast.gname name

let lut_of_group g =
  let axis name =
    match Ast.complex_values g name with
    | Some values -> Ast.float_list_of_values values
    | None -> fail "table %s: missing %s" g.Ast.gname name
  in
  let slews = axis "index_1" in
  let loads = axis "index_2" in
  let rows =
    match Ast.complex_values g "values" with
    | Some values ->
      List.map
        (function
          | Ast.String s -> Ast.float_list_of_values [ Ast.String s ]
          | Ast.Number f -> [| f |]
          | Ast.Ident s -> Ast.float_list_of_values [ Ast.Ident s ])
        values
    | None -> fail "table %s: missing values" g.Ast.gname
  in
  let grid = Vartune_util.Grid.of_arrays (Array.of_list rows) in
  Lut.make ~slews ~loads ~values:grid

let find_table timing name =
  match Ast.child_groups timing name with
  | [ g ] -> lut_of_group g
  | [] -> fail "timing group: missing %s table" name
  | _ :: _ :: _ -> fail "timing group: duplicate %s table" name

let find_table_opt timing name =
  match Ast.child_groups timing name with
  | [ g ] -> Some (lut_of_group g)
  | [] -> None
  | _ :: _ :: _ -> fail "timing group: duplicate %s table" name

let arc_of_group timing =
  let related_pin = required_string timing "related_pin" in
  let sense =
    match Ast.attr_string timing "timing_sense" with
    | None -> Arc.Non_unate
    | Some s -> (
      match Arc.sense_of_string s with
      | Some sense -> sense
      | None -> fail "timing group: bad timing_sense %S" s)
  in
  Arc.make ~related_pin ~sense
    ~rise_delay:(find_table timing "cell_rise")
    ~fall_delay:(find_table timing "cell_fall")
    ~rise_transition:(find_table timing "rise_transition")
    ~fall_transition:(find_table timing "fall_transition")
    ?rise_delay_sigma:(find_table_opt timing "cell_rise_sigma")
    ?fall_delay_sigma:(find_table_opt timing "cell_fall_sigma")
    ?internal_power:(find_table_opt timing "internal_power")
    ()

let pin_of_group g =
  let name = match g.Ast.args with [ n ] -> n | _ -> fail "pin group: expected one name" in
  match required_string g "direction" with
  | "input" ->
    Pin.input ~name ~capacitance:(required_float g "capacitance")
  | "output" ->
    let arcs = List.map arc_of_group (Ast.child_groups g "timing") in
    Pin.output ~name ?max_capacitance:(Ast.attr_float g "max_capacitance") ~arcs ()
  | other -> fail "pin %s: bad direction %S" name other

let cell_of_group g =
  let name = match g.Ast.args with [ n ] -> n | _ -> fail "cell group: expected one name" in
  let kind =
    match Ast.attr_string g "kind" with
    | None -> Cell.Combinational
    | Some s -> (
      match Cell.kind_of_string s with
      | Some k -> k
      | None -> fail "cell %s: bad kind %S" name s)
  in
  let pins = List.map pin_of_group (Ast.child_groups g "pin") in
  Cell.make ~name
    ~family:(required_string g "family")
    ~drive_strength:
      (match Ast.attr_int g "drive_strength" with
      | Some d -> d
      | None -> fail "cell %s: missing drive_strength" name)
    ~kind
    ~area:(required_float g "area")
    ~pins
    ?setup_time:(Ast.attr_float g "setup_time")
    ?hold_time:(Ast.attr_float g "hold_time")
    ?clock_pin:(Ast.attr_string g "clock_pin")
    ?leakage:(Ast.attr_float g "cell_leakage_power")
    ()

let library_of_ast g =
  if g.Ast.gname <> "library" then fail "expected a library group, found %s" g.Ast.gname;
  let name = match g.Ast.args with [ n ] -> n | _ -> fail "library group: expected one name" in
  let corner = Option.value (Ast.attr_string g "corner") ~default:"UNKNOWN" in
  let cells = List.map cell_of_group (Ast.child_groups g "cell") in
  Library.make ~name ~corner ~cells

let parse src = library_of_ast (parse_group src)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
