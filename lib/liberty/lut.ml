module Grid = Vartune_util.Grid

type t = { slews : float array; loads : float array; values : Grid.t }

let strictly_increasing a =
  let ok = ref (Array.length a > 0) in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let make ~slews ~loads ~values =
  if not (strictly_increasing slews) then invalid_arg "Lut.make: slew axis not increasing";
  if not (strictly_increasing loads) then invalid_arg "Lut.make: load axis not increasing";
  if Grid.rows values <> Array.length slews || Grid.cols values <> Array.length loads then
    invalid_arg "Lut.make: grid does not match axes";
  { slews = Array.copy slews; loads = Array.copy loads; values }

let of_fn ~slews ~loads f =
  let values =
    Grid.init ~rows:(Array.length slews) ~cols:(Array.length loads) (fun i j ->
        f ~slew:slews.(i) ~load:loads.(j))
  in
  make ~slews ~loads ~values

let slews t = Array.copy t.slews
let loads t = Array.copy t.loads
let values t = t.values
let dims t = (Array.length t.slews, Array.length t.loads)
let get t i j = Grid.get t.values i j

(* [make] checked that the grid matches the axes, and [segment] returns
   indices inside the axes, so the interpolation below may skip bounds
   checks — this lookup dominates the STA inner loop. *)
let uget t i j = Grid.unsafe_get t.values i j

(* Index of the lower end of the axis segment bracketing [x]; out-of-range
   queries use the outermost segment (linear extrapolation). *)
let segment axis x =
  let n = Array.length axis in
  if n = 1 then 0
  else if x <= axis.(0) then 0
  else if x >= axis.(n - 1) then n - 2
  else begin
    let rec search lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if axis.(mid) <= x then search mid hi else search lo mid
      end
    in
    search 0 (n - 1)
  end

(* Paper eqs. (2)-(4): interpolate along the load axis first (P1, P2), then
   along the slew axis. *)
let lookup t ~slew ~load =
  let i = segment t.slews slew and j = segment t.loads load in
  let n_slew = Array.length t.slews and n_load = Array.length t.loads in
  if n_slew = 1 && n_load = 1 then uget t 0 0
  else if n_slew = 1 then begin
    let l0 = Array.unsafe_get t.loads j and l1 = Array.unsafe_get t.loads (j + 1) in
    let wl = (load -. l0) /. (l1 -. l0) in
    ((1.0 -. wl) *. uget t 0 j) +. (wl *. uget t 0 (j + 1))
  end
  else if n_load = 1 then begin
    let s0 = Array.unsafe_get t.slews i and s1 = Array.unsafe_get t.slews (i + 1) in
    let ws = (slew -. s0) /. (s1 -. s0) in
    ((1.0 -. ws) *. uget t i 0) +. (ws *. uget t (i + 1) 0)
  end
  else begin
    let l0 = Array.unsafe_get t.loads j and l1 = Array.unsafe_get t.loads (j + 1) in
    let s0 = Array.unsafe_get t.slews i and s1 = Array.unsafe_get t.slews (i + 1) in
    let wl = (load -. l0) /. (l1 -. l0) in
    let p1 = ((1.0 -. wl) *. uget t i j) +. (wl *. uget t i (j + 1)) in
    let p2 = ((1.0 -. wl) *. uget t (i + 1) j) +. (wl *. uget t (i + 1) (j + 1)) in
    let ws = (slew -. s0) /. (s1 -. s0) in
    ((1.0 -. ws) *. p1) +. (ws *. p2)
  end

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let lookup_clamped t ~slew ~load =
  let slew = clamp t.slews.(0) t.slews.(Array.length t.slews - 1) slew in
  let load = clamp t.loads.(0) t.loads.(Array.length t.loads - 1) load in
  lookup t ~slew ~load

let map f t = { t with values = Grid.map f t.values }

let same_axes a b = a.slews = b.slews && a.loads = b.loads

let map2 f a b =
  if not (same_axes a b) then invalid_arg "Lut.map2: axis mismatch";
  { a with values = Grid.map2 f a.values b.values }

let max_equivalent = function
  | [] -> invalid_arg "Lut.max_equivalent: empty list"
  | first :: rest -> List.fold_left (map2 Float.max) first rest

let merge ts ~f =
  match ts with
  | [] -> invalid_arg "Lut.merge: empty list"
  | first :: rest ->
    List.iter (fun t -> if not (same_axes first t) then invalid_arg "Lut.merge: axis mismatch") rest;
    let n = List.length ts in
    let tables = Array.of_list ts in
    let values =
      Grid.init
        ~rows:(Grid.rows first.values)
        ~cols:(Grid.cols first.values)
        (fun i j -> f (Array.init n (fun k -> get tables.(k) i j)))
    in
    { first with values }

let equal ?eps a b = same_axes a b && Grid.equal ?eps a.values b.values

let pp ppf t =
  Format.fprintf ppf "slews: %a@\nloads: %a@\n%a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_float)
    (Array.to_list t.slews)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_float)
    (Array.to_list t.loads) Grid.pp t.values
