module Grid = Vartune_util.Grid
module Kernel = Vartune_util.Kernel

type t = { slews : float array; loads : float array; values : Grid.t }

let strictly_increasing a =
  let ok = ref (Array.length a > 0) in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let make ~slews ~loads ~values =
  if not (strictly_increasing slews) then invalid_arg "Lut.make: slew axis not increasing";
  if not (strictly_increasing loads) then invalid_arg "Lut.make: load axis not increasing";
  if Grid.rows values <> Array.length slews || Grid.cols values <> Array.length loads then
    invalid_arg "Lut.make: grid does not match axes";
  { slews = Array.copy slews; loads = Array.copy loads; values }

let of_fn ~slews ~loads f =
  let values =
    Grid.init ~rows:(Array.length slews) ~cols:(Array.length loads) (fun i j ->
        f ~slew:slews.(i) ~load:loads.(j))
  in
  make ~slews ~loads ~values

let slews t = Array.copy t.slews
let loads t = Array.copy t.loads
let values t = t.values
let dims t = (Array.length t.slews, Array.length t.loads)
let get t i j = Grid.get t.values i j

(* Paper eqs. (2)-(4) live in Vartune_util.Kernel.Bilinear now: one
   fused pass over the flat row-major backing with hoisted axis loads.
   [make] checked that the grid matches the axes, so the kernel's
   no-bounds-check contract holds — this lookup dominates the STA
   inner loop. *)
let lookup t ~slew ~load =
  Kernel.Bilinear.lookup ~xs:t.slews ~ys:t.loads (Grid.unsafe_data t.values) ~x:slew ~y:load

(* Fused rise/fall entry points: one segment search over the shared
   axes serves both surfaces.  Axis sharing is the caller's contract
   (Arc.make enforces it across an arc's tables); each component is
   bit-identical to the corresponding plain [lookup]. *)
let lookup_max2 a b ~slew ~load =
  Kernel.Bilinear.lookup_max2 ~xs:a.slews ~ys:a.loads (Grid.unsafe_data a.values)
    (Grid.unsafe_data b.values) ~x:slew ~y:load

let lookup_min2 a b ~slew ~load =
  Kernel.Bilinear.lookup_min2 ~xs:a.slews ~ys:a.loads (Grid.unsafe_data a.values)
    (Grid.unsafe_data b.values) ~x:slew ~y:load

let lookup4_into a b c d ~slew ~load ~out =
  Kernel.Bilinear.lookup4_into ~xs:a.slews ~ys:a.loads (Grid.unsafe_data a.values)
    (Grid.unsafe_data b.values) (Grid.unsafe_data c.values) (Grid.unsafe_data d.values)
    ~x:slew ~y:load ~out

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let lookup_clamped t ~slew ~load =
  let slew = clamp t.slews.(0) t.slews.(Array.length t.slews - 1) slew in
  let load = clamp t.loads.(0) t.loads.(Array.length t.loads - 1) load in
  lookup t ~slew ~load

let map f t = { t with values = Grid.map f t.values }

(* IEEE-754 bit equality per entry, not structural [=]: polymorphic
   equality on float arrays boxes every element and calls NaN unequal
   to itself, so a NaN-carrying axis (representable — strictly-
   increasing accepts a single-element NaN axis) would make a table
   unequal to a copy of itself and poison every map2/merge.  Bitwise,
   NaN axes agree with themselves; -0.0 and +0.0 differ, which a
   strictly increasing axis can never produce side by side anyway. *)
let axis_bits_equal a b =
  let n = Array.length a in
  n = Array.length b
  && begin
    let ok = ref true in
    for i = 0 to n - 1 do
      if
        Int64.bits_of_float (Array.unsafe_get a i)
        <> Int64.bits_of_float (Array.unsafe_get b i)
      then ok := false
    done;
    !ok
  end

let same_axes a b = axis_bits_equal a.slews b.slews && axis_bits_equal a.loads b.loads

let map2 f a b =
  if not (same_axes a b) then invalid_arg "Lut.map2: axis mismatch";
  { a with values = Grid.map2 f a.values b.values }

let max_equivalent = function
  | [] -> invalid_arg "Lut.max_equivalent: empty list"
  | first :: rest -> List.fold_left (map2 Float.max) first rest

let merge ts ~f =
  match ts with
  | [] -> invalid_arg "Lut.merge: empty list"
  | first :: rest ->
    List.iter (fun t -> if not (same_axes first t) then invalid_arg "Lut.merge: axis mismatch") rest;
    let n = List.length ts in
    let tables = Array.of_list ts in
    let values =
      Grid.init
        ~rows:(Grid.rows first.values)
        ~cols:(Grid.cols first.values)
        (fun i j -> f (Array.init n (fun k -> get tables.(k) i j)))
    in
    { first with values }

let equal ?eps a b = same_axes a b && Grid.equal ?eps a.values b.values

let pp ppf t =
  (* Axes print with the repository's round-trip-exact convention
     (shortest of %.12g/%.17g), not pp_print_float's lossy %.12g-ish
     rendering: a breakpoint copied out of a debug dump must be the
     breakpoint. *)
  Format.fprintf ppf "slews: %a@\nloads: %a@\n%a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Vartune_util.Floatfmt.pp)
    (Array.to_list t.slews)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Vartune_util.Floatfmt.pp)
    (Array.to_list t.loads) Grid.pp t.values
