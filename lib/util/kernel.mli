(** Flat float kernels for the numeric core.

    The two inner-loop shapes of the pipeline — entry-wise Welford
    accumulation / Chan pairwise merge over LUT surfaces (paper Section
    IV) and bilinear table interpolation (paper eqs. 2-4) — over plain
    unboxed [float array]s.  Callers lay surfaces out flat (SoA,
    row-major) and the kernels touch contiguous unboxed memory with
    hoisted axis loads and no per-entry records.

    Bit-exactness contract: every kernel performs the exact float-op
    sequence of the boxed code it replaced, so flattened callers stay
    bit-identical to the seed implementation at any pool size.  The
    bitwise-agreement tests in [test_kernel.ml] pin this down; do not
    reorder arithmetic without re-running them.

    Obs counters ([kernel.welford_update_entries],
    [kernel.welford_merge_entries], [kernel.bilinear_lookups]) are
    batched per kernel call for BENCH attribution. *)

module Welford : sig
  val update : n:int -> mean:float array -> m2:float array -> float array -> unit
  (** [update ~n ~mean ~m2 x] absorbs [x] entry-wise as the [n]-th
      observation ([n >= 1], i.e. the caller's already-bumped count)
      into the running [mean]/[m2] surfaces, in place.  All three
      arrays must share a length. *)

  val merge :
    na:int ->
    nb:int ->
    mean_a:float array ->
    m2_a:float array ->
    mean_b:float array ->
    m2_b:float array ->
    unit
  (** Chan et al. pairwise combination of two Welford partials: the
      left partial (count [na]) absorbs the right (count [nb]) in
      place.  Both counts must be positive — the [na = 0] case is a
      plain blit the caller owns, so a zero-count copy never passes
      through arithmetic. *)

  val sigma_into : n:int -> m2:float array -> dst:float array -> unit
  (** [sigma_into ~n ~m2 ~dst] writes each entry's standard deviation
      [sqrt (max 0 (m2 / (n-1)))] into [dst]; all zeros when [n < 2].
      Negative rounding residue is clamped, genuine NaN propagates. *)
end

module Bilinear : sig
  val segment : float array -> float -> int
  (** Index of the lower end of the axis segment bracketing the query;
      out-of-range queries map to the outermost segment, which the
      weight formula turns into linear extrapolation. *)

  val lookup : xs:float array -> ys:float array -> float array -> x:float -> y:float -> float
  (** [lookup ~xs ~ys data ~x ~y] bilinearly interpolates the row-major
      [xs]-by-[ys] surface [data] at [(x, y)], interpolating along [ys]
      first.  Degenerate 1x1 / 1xN / Nx1 axes take explicit branches
      (a zero-weight pass through the general formula could flip the
      sign bit of a [-0.0] entry).  The caller guarantees
      [Array.length data = Array.length xs * Array.length ys]. *)

  val lookup2 :
    xs:float array ->
    ys:float array ->
    float array ->
    float array ->
    x:float ->
    y:float ->
    float * float
  (** Two surfaces sharing axes, one segment search; each component is
      bit-identical to the corresponding single {!lookup}. *)

  val lookup_max2 :
    xs:float array ->
    ys:float array ->
    float array ->
    float array ->
    x:float ->
    y:float ->
    float
  (** [Float.max] of {!lookup2} — the worst-edge shape of arc delay and
      transition queries. *)

  val lookup_min2 :
    xs:float array ->
    ys:float array ->
    float array ->
    float array ->
    x:float ->
    y:float ->
    float
  (** [Float.min] of {!lookup2} — the best-edge shape of min-delay
      (hold) queries. *)

  val lookup4_into :
    xs:float array ->
    ys:float array ->
    float array ->
    float array ->
    float array ->
    float array ->
    x:float ->
    y:float ->
    out:float array ->
    unit
  (** Four surfaces over shared axes — rise/fall x delay/transition of
      a timing arc — with a single segment search; result [k] lands in
      [out.(k)].  [out] (length >= 4) is caller scratch so the STA
      forward pass allocates nothing per node. *)
end
