(* Shortest decimal representation that round-trips the float exactly:
   %.12g when that already reparses to the same bits, %.17g otherwise.
   One convention shared by the liberty printer and every debug dump so
   a value read back from any rendering is the value that was printed. *)
let repr f =
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let pp ppf f = Format.pp_print_string ppf (repr f)
