(* Flat float kernels for the numeric core.

   Every hot loop of the pipeline bottoms out in one of two shapes: the
   entry-wise Welford accumulation / Chan pairwise merge over LUT
   surfaces (paper Section IV), and the bilinear table interpolation
   (paper eqs. 2-4).  This module implements both over plain unboxed
   [float array]s — no per-entry records, no Grid indirection, axis
   loads hoisted — so callers lay their surfaces out flat (SoA) and the
   inner loops touch contiguous unboxed memory only.

   Bit-exactness contract: each kernel performs the exact float-op
   sequence of the boxed code it replaced (see Statlib.Boxed_ref and
   Lut.lookup's history), so flattened callers produce bit-identical
   results at any pool size.  Do not reorder or refactor arithmetic
   here without re-running the bitwise-agreement tests.

   Counters are batched — one [add] per kernel call, never per entry —
   so BENCH attribution costs one atomic read on the disabled path. *)

module Obs = Vartune_obs.Obs

let c_welford_entries = Obs.Counter.make "kernel.welford_update_entries"
let c_merge_entries = Obs.Counter.make "kernel.welford_merge_entries"
let c_lookups = Obs.Counter.make "kernel.bilinear_lookups"

module Welford = struct
  let check3 name a b c =
    let len = Array.length a in
    if Array.length b <> len || Array.length c <> len then
      invalid_arg (Printf.sprintf "Kernel.Welford.%s: length mismatch" name);
    len

  (* Absorb [x] entry-wise as the [n]-th observation (so the caller has
     already bumped its count to [n]).  Same update as
     [Stat.Welford.add], vectorised over the whole surface. *)
  let update ~n ~mean ~m2 x =
    let len = check3 "update" mean m2 x in
    let fn = float_of_int n in
    for k = 0 to len - 1 do
      let xv = Array.unsafe_get x k in
      let m = Array.unsafe_get mean k in
      let delta = xv -. m in
      let m' = m +. (delta /. fn) in
      Array.unsafe_set mean k m';
      Array.unsafe_set m2 k (Array.unsafe_get m2 k +. (delta *. (xv -. m')))
    done;
    Obs.Counter.add c_welford_entries len

  (* Chan et al. pairwise combination: the left partial (count [na])
     absorbs the right (count [nb]) in place.  Both counts must be
     positive — the caller owns the [na = 0] blit case, exactly as the
     boxed accumulator did, so the zero-count copy stays a copy and
     never goes through arithmetic that could perturb bits. *)
  let merge ~na ~nb ~mean_a ~m2_a ~mean_b ~m2_b =
    if na <= 0 || nb <= 0 then invalid_arg "Kernel.Welford.merge: counts must be positive";
    let len = check3 "merge" mean_a m2_a mean_b in
    if Array.length m2_b <> len then invalid_arg "Kernel.Welford.merge: length mismatch";
    let na = float_of_int na and nb = float_of_int nb in
    let n = na +. nb in
    for k = 0 to len - 1 do
      let ma = Array.unsafe_get mean_a k and mb = Array.unsafe_get mean_b k in
      let delta = mb -. ma in
      Array.unsafe_set mean_a k (ma +. (delta *. (nb /. n)));
      Array.unsafe_set m2_a k
        (Array.unsafe_get m2_a k +. Array.unsafe_get m2_b k
        +. (delta *. delta *. (na *. nb /. n)))
    done;
    Obs.Counter.add c_merge_entries len

  (* Standard deviation of each entry given its m2 and the shared
     count: m2 / (n-1), clamped at zero before the square root because
     streaming cancellation can leave a tiny negative on near-constant
     entries (think -1e-18); genuine NaN still propagates.  Fewer than
     two observations have no spread — all zeros. *)
  let sigma_into ~n ~m2 ~dst =
    let len = Array.length m2 in
    if Array.length dst <> len then invalid_arg "Kernel.Welford.sigma_into: length mismatch";
    if n < 2 then Array.fill dst 0 len 0.0
    else begin
      let denom = float_of_int (n - 1) in
      for k = 0 to len - 1 do
        let v = Array.unsafe_get m2 k /. denom in
        Array.unsafe_set dst k (sqrt (if v < 0.0 then 0.0 else v))
      done
    end
end

module Bilinear = struct
  (* Index of the lower end of the axis segment bracketing [x];
     out-of-range queries use the outermost segment, which the weight
     formula turns into linear extrapolation.  Same answers as the
     recursive binary search it replaced, without the call frames. *)
  let segment axis x =
    let n = Array.length axis in
    if n = 1 then 0
    else if x <= Array.unsafe_get axis 0 then 0
    else if x >= Array.unsafe_get axis (n - 1) then n - 2
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if Array.unsafe_get axis mid <= x then lo := mid else hi := mid
      done;
      !lo
    end

  (* Paper eqs. (2)-(4): interpolate along the load (ys) axis first
     (P1, P2), then along the slew (xs) axis.  The degenerate 1x1, 1xN
     and Nx1 branches are explicit, not the general formula with a zero
     weight: (1-0)*p1 + 0*p2 could flip the sign of a -0.0 entry, and
     the bit-exactness contract forbids that.

     [data] is the row-major backing of an [xs]-by-[ys] surface; the
     caller guarantees [Array.length data = length xs * length ys]
     (the Lut constructor already has). *)
  let lookup ~xs ~ys data ~x ~y =
    Obs.Counter.incr c_lookups;
    let n_x = Array.length xs and n_y = Array.length ys in
    let i = segment xs x and j = segment ys y in
    if n_x = 1 && n_y = 1 then Array.unsafe_get data 0
    else if n_x = 1 then begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      ((1.0 -. wy) *. Array.unsafe_get data j) +. (wy *. Array.unsafe_get data (j + 1))
    end
    else if n_y = 1 then begin
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wx = (x -. x0) /. (x1 -. x0) in
      ((1.0 -. wx) *. Array.unsafe_get data i) +. (wx *. Array.unsafe_get data (i + 1))
    end
    else begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      let row = (i * n_y) + j in
      let p1 =
        ((1.0 -. wy) *. Array.unsafe_get data row) +. (wy *. Array.unsafe_get data (row + 1))
      in
      let row' = row + n_y in
      let p2 =
        ((1.0 -. wy) *. Array.unsafe_get data row')
        +. (wy *. Array.unsafe_get data (row' + 1))
      in
      let wx = (x -. x0) /. (x1 -. x0) in
      ((1.0 -. wx) *. p1) +. (wx *. p2)
    end

  (* Fused rise/fall pair: one segment search and one weight
     computation serve two surfaces that share axes (the Arc
     constructor enforces the sharing).  Each per-surface interpolation
     is the exact op sequence of [lookup], so combining the two results
     with max/min matches two independent lookups bit-for-bit. *)
  let lookup2 ~xs ~ys a b ~x ~y =
    Obs.Counter.add c_lookups 2;
    let n_x = Array.length xs and n_y = Array.length ys in
    let i = segment xs x and j = segment ys y in
    if n_x = 1 && n_y = 1 then (Array.unsafe_get a 0, Array.unsafe_get b 0)
    else if n_x = 1 then begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      let one = 1.0 -. wy in
      ( (one *. Array.unsafe_get a j) +. (wy *. Array.unsafe_get a (j + 1)),
        (one *. Array.unsafe_get b j) +. (wy *. Array.unsafe_get b (j + 1)) )
    end
    else if n_y = 1 then begin
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wx = (x -. x0) /. (x1 -. x0) in
      let one = 1.0 -. wx in
      ( (one *. Array.unsafe_get a i) +. (wx *. Array.unsafe_get a (i + 1)),
        (one *. Array.unsafe_get b i) +. (wx *. Array.unsafe_get b (i + 1)) )
    end
    else begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      let wx = (x -. x0) /. (x1 -. x0) in
      let one_y = 1.0 -. wy and one_x = 1.0 -. wx in
      let row = (i * n_y) + j in
      let row' = row + n_y in
      let pa1 = (one_y *. Array.unsafe_get a row) +. (wy *. Array.unsafe_get a (row + 1)) in
      let pa2 = (one_y *. Array.unsafe_get a row') +. (wy *. Array.unsafe_get a (row' + 1)) in
      let pb1 = (one_y *. Array.unsafe_get b row) +. (wy *. Array.unsafe_get b (row + 1)) in
      let pb2 = (one_y *. Array.unsafe_get b row') +. (wy *. Array.unsafe_get b (row' + 1)) in
      ((one_x *. pa1) +. (wx *. pa2), (one_x *. pb1) +. (wx *. pb2))
    end

  let lookup_max2 ~xs ~ys a b ~x ~y =
    let va, vb = lookup2 ~xs ~ys a b ~x ~y in
    Float.max va vb

  let lookup_min2 ~xs ~ys a b ~x ~y =
    let va, vb = lookup2 ~xs ~ys a b ~x ~y in
    Float.min va vb

  (* Four surfaces over shared axes — the rise/fall x delay/transition
     shape of a timing arc — interpolated with a single segment search
     per axis; result k lands in [out.(k)].  [out] is caller-provided
     scratch so a full STA forward pass allocates nothing per node.
     Entry arithmetic is again exactly [lookup]'s, surface by
     surface. *)
  let lookup4_into ~xs ~ys a b c d ~x ~y ~out =
    Obs.Counter.add c_lookups 4;
    if Array.length out < 4 then invalid_arg "Kernel.Bilinear.lookup4_into: out too short";
    let n_x = Array.length xs and n_y = Array.length ys in
    let i = segment xs x and j = segment ys y in
    if n_x = 1 && n_y = 1 then begin
      Array.unsafe_set out 0 (Array.unsafe_get a 0);
      Array.unsafe_set out 1 (Array.unsafe_get b 0);
      Array.unsafe_set out 2 (Array.unsafe_get c 0);
      Array.unsafe_set out 3 (Array.unsafe_get d 0)
    end
    else if n_x = 1 then begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      let one = 1.0 -. wy in
      Array.unsafe_set out 0
        ((one *. Array.unsafe_get a j) +. (wy *. Array.unsafe_get a (j + 1)));
      Array.unsafe_set out 1
        ((one *. Array.unsafe_get b j) +. (wy *. Array.unsafe_get b (j + 1)));
      Array.unsafe_set out 2
        ((one *. Array.unsafe_get c j) +. (wy *. Array.unsafe_get c (j + 1)));
      Array.unsafe_set out 3
        ((one *. Array.unsafe_get d j) +. (wy *. Array.unsafe_get d (j + 1)))
    end
    else if n_y = 1 then begin
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wx = (x -. x0) /. (x1 -. x0) in
      let one = 1.0 -. wx in
      Array.unsafe_set out 0
        ((one *. Array.unsafe_get a i) +. (wx *. Array.unsafe_get a (i + 1)));
      Array.unsafe_set out 1
        ((one *. Array.unsafe_get b i) +. (wx *. Array.unsafe_get b (i + 1)));
      Array.unsafe_set out 2
        ((one *. Array.unsafe_get c i) +. (wx *. Array.unsafe_get c (i + 1)));
      Array.unsafe_set out 3
        ((one *. Array.unsafe_get d i) +. (wx *. Array.unsafe_get d (i + 1)))
    end
    else begin
      let y0 = Array.unsafe_get ys j and y1 = Array.unsafe_get ys (j + 1) in
      let x0 = Array.unsafe_get xs i and x1 = Array.unsafe_get xs (i + 1) in
      let wy = (y -. y0) /. (y1 -. y0) in
      let wx = (x -. x0) /. (x1 -. x0) in
      let one_y = 1.0 -. wy and one_x = 1.0 -. wx in
      let row = (i * n_y) + j in
      let row' = row + n_y in
      let pa1 = (one_y *. Array.unsafe_get a row) +. (wy *. Array.unsafe_get a (row + 1)) in
      let pa2 = (one_y *. Array.unsafe_get a row') +. (wy *. Array.unsafe_get a (row' + 1)) in
      Array.unsafe_set out 0 ((one_x *. pa1) +. (wx *. pa2));
      let pb1 = (one_y *. Array.unsafe_get b row) +. (wy *. Array.unsafe_get b (row + 1)) in
      let pb2 = (one_y *. Array.unsafe_get b row') +. (wy *. Array.unsafe_get b (row' + 1)) in
      Array.unsafe_set out 1 ((one_x *. pb1) +. (wx *. pb2));
      let pc1 = (one_y *. Array.unsafe_get c row) +. (wy *. Array.unsafe_get c (row + 1)) in
      let pc2 = (one_y *. Array.unsafe_get c row') +. (wy *. Array.unsafe_get c (row' + 1)) in
      Array.unsafe_set out 2 ((one_x *. pc1) +. (wx *. pc2));
      let pd1 = (one_y *. Array.unsafe_get d row) +. (wy *. Array.unsafe_get d (row + 1)) in
      let pd2 = (one_y *. Array.unsafe_get d row') +. (wy *. Array.unsafe_get d (row' + 1)) in
      Array.unsafe_set out 3 ((one_x *. pd1) +. (wx *. pd2))
    end
end
