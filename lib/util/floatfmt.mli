(** Round-trip-exact float rendering.

    The repository convention for writing floats as text: the shortest
    of [%.12g] / [%.17g] that parses back to the identical bit pattern.
    Used by the liberty printer, [Lut.pp] and debug dumps, so a number
    copied out of any artifact reproduces the float exactly. *)

val repr : float -> string
(** [repr f] is [%.12g f] if that round-trips bit-exactly, else
    [%.17g f] (which always does for finite and non-finite values). *)

val pp : Format.formatter -> float -> unit
(** [pp ppf f] prints {!repr}[ f]. *)
