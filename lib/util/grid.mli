(** Dense two-dimensional float grids.

    The project indexes grids as [(row, col)] where, for look-up tables,
    rows follow the input-slew axis and columns the output-load axis. *)

type t
(** A rectangular grid of floats. *)

val create : rows:int -> cols:int -> float -> t
(** [create ~rows ~cols v] is a grid filled with [v].  Dimensions must be
    positive. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] fills cell [(i, j)] with [f i j]. *)

val of_arrays : float array array -> t
(** Copies a non-ragged, non-empty array of rows.  Raises
    [Invalid_argument] otherwise. *)

val of_flat : rows:int -> cols:int -> float array -> t
(** [of_flat ~rows ~cols data] wraps the row-major [data] without
    copying — the grid takes ownership, so the caller must not mutate
    [data] afterwards.  Raises [Invalid_argument] unless
    [Array.length data = rows * cols] with positive dimensions.  This
    is the zero-copy constructor the flat kernels and the codec build
    surfaces through. *)

val to_arrays : t -> float array array
(** Fresh row-major copy. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get g i j]; bounds-checked. *)

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** [unsafe_get g i j] is {!get} without the bounds check, for inner
    loops whose indices were validated once up front (the bilinear LUT
    interpolation is the motivating caller).  The caller must guarantee
    [0 <= i < rows g] and [0 <= j < cols g]; anything else is undefined
    behaviour, not an exception. *)

val unsafe_set : t -> int -> int -> float -> unit
(** Unchecked counterpart of {!set}; same caller obligations as
    {!unsafe_get}. *)

val unsafe_data : t -> float array
(** The live row-major backing array — not a copy.  Entry [(i, j)]
    lives at index [i * cols + j].  Mutating it mutates the grid; the
    flat kernels and the store codec use this to stream surfaces
    without per-entry accessor calls. *)

val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination; dimensions must agree. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val iteri : (int -> int -> float -> unit) -> t -> unit

val max_value : t -> float
val min_value : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Pointwise equality within [eps] (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
(** Fixed-width tabular rendering, one row per line. *)
