(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible from an explicit seed.  The generator is
    splitmix64: tiny state, good statistical quality for simulation work,
    and trivially splittable into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with identical current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    continuation of [t]'s stream.  Advances [t]. *)

val stream : t -> int -> t
(** [stream t k] is the generator the [(k+1)]-th call of {!split} on a
    [copy] of [t] would return, computed in O(1) without advancing [t].
    This is the parallel-safe way to fan one seed out into indexed
    independent streams: [stream (create seed) i] depends only on
    [(seed, i)], so work item [i] draws the same deviates no matter
    which domain runs it or in what order.
    Raises [Invalid_argument] on a negative index. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller, polar form). *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
