(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible from an explicit seed.  The generator is
    splitmix64: tiny state, good statistical quality for simulation work,
    and trivially splittable into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with identical current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    continuation of [t]'s stream.  Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller, polar form). *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
