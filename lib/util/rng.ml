type t = { mutable state : int64; mutable spare : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed; spare = None }

let copy t = { state = t.state; spare = t.spare }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed; spare = None }

(* Closed form of the k-th [split]: after k prior splits the state has
   advanced k times, so split number k (0-based) observes
   state + (k+1) * gamma and returns mix64 (mix64 of that).  Keeping this
   in lock-step with [split] is what lets parallel consumers derive the
   i-th stream in O(1) without touching a shared generator. *)
let stream t k =
  if k < 0 then invalid_arg "Rng.stream: negative index";
  let s = Int64.add t.state (Int64.mul (Int64.of_int (k + 1)) golden_gamma) in
  { state = mix64 (mix64 s); spare = None }

(* Top 53 bits of the 64-bit output, scaled into [0,1). *)
let uniform t =
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u *. 0x1.0p-53

let float t bound = uniform t *. bound

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible with 64-bit
     outputs and the small bounds used in this project. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let normal t =
  match t.spare with
  | Some v ->
    t.spare <- None;
    v
  | None ->
    let rec draw () =
      let u = (2.0 *. uniform t) -. 1.0 in
      let v = (2.0 *. uniform t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw () else (u, v, s)
    in
    let u, v, s = draw () in
    let scale = sqrt (-2.0 *. log s /. s) in
    t.spare <- Some (v *. scale);
    u *. scale

let gaussian t ~mean ~sigma = mean +. (sigma *. normal t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
