(** Growable arrays (OCaml 5.1 lacks [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
