module Obs = Vartune_obs.Obs
module Fault = Vartune_fault.Fault

let src = Logs.Src.create "vartune.pool" ~doc:"domain worker pool"

module Log = (val Logs.src_log src : Logs.LOG)

exception Worker_failure of string

let () =
  Printexc.register_printer (function
    | Worker_failure msg -> Some (Printf.sprintf "Vartune_util.Pool.Worker_failure(%s)" msg)
    | _ -> None)

(* A queued task.  [run] settles its own result slot and never raises;
   [abandon] settles the slot with {!Worker_failure} when the task has
   burnt through its crash budget; [attempts] counts executions begun on
   worker domains (only crashes increment it — a completed run is the
   task's last). *)
type task = {
  run : unit -> unit;
  abandon : string -> unit;
  mutable attempts : int;
}

(* A task whose workers keep dying is abandoned after this many
   attempts rather than requeued forever. *)
let max_task_attempts = 8

type t = {
  jobs : int;
  stall_timeout_s : float;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  restarts : int Atomic.t;
  in_flight_tasks : int Atomic.t;
      (** tasks currently executing on some domain — dequeued but not
          yet settled/requeued.  Supervisors drain on this: once the
          queue is empty and [in_flight] is 0, no work can be lost. *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Job-count precedence: an explicit [~jobs] (the --jobs flag) wins,
   then VARTUNE_JOBS, then the recommended domain count.  A VARTUNE_JOBS
   value that is not a positive integer is rejected loudly — silently
   falling back used to hide typos like VARTUNE_JOBS=0. *)
let env_jobs () =
  match Sys.getenv_opt "VARTUNE_JOBS" with
  | None -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some j when j >= 1 -> Some j
    | Some _ | None ->
      Log.warn (fun m ->
          m "ignoring VARTUNE_JOBS=%S: expected a positive integer, using %d (recommended \
             domain count)"
            v
            (Domain.recommended_domain_count ()));
      None)

let resolve_jobs = function
  | Some j when j >= 1 -> j
  | Some j ->
    invalid_arg (Printf.sprintf "Pool.create: jobs must be a positive integer (got %d)" j)
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

(* Stall watchdog grace period: how long the completion wait tolerates
   zero progress (no task finishing, nothing left to help with) before
   concluding the remaining tasks are stuck on unresponsive workers.
   Disabled (infinite) unless VARTUNE_POOL_STALL_S or ~stall_timeout_s
   says otherwise. *)
let parse_stall_timeout v =
  match float_of_string_opt (String.trim v) with
  | Some s when s > 0.0 -> Ok s (* NaN fails this comparison; infinity = disabled *)
  | Some _ ->
    Error
      (Printf.sprintf "stall timeout %s is not a positive number of seconds" (String.trim v))
  | None -> Error (Printf.sprintf "bad stall timeout %S: expected seconds" v)

(* A malformed value used to warn and silently disable the watchdog —
   which meant a typo'd VARTUNE_POOL_STALL_S=-30 left a wedged pipeline
   hanging forever.  Reject it instead; the CLI validates first and
   turns this into a usage error (exit 64) naming the token. *)
let env_stall_timeout () =
  match Sys.getenv_opt "VARTUNE_POOL_STALL_S" with
  | None -> infinity
  | Some v when String.trim v = "" -> infinity
  | Some v -> (
    match parse_stall_timeout v with
    | Ok s -> s
    | Error msg -> invalid_arg (Printf.sprintf "VARTUNE_POOL_STALL_S: %s" msg))

(* --------------------- chunked-submission size --------------------- *)

(* Chunk-size precedence mirrors the jobs precedence: an explicit
   [?chunk] (the --chunk flag passes through set_default_chunk) wins,
   then VARTUNE_POOL_CHUNK, then an automatic size that aims for ~8
   tasks per worker so scheduling stays balanced while per-task
   closure/boxing overhead amortises over many items.  Chunking is
   granularity only: it can never change what is computed from which
   input, so results are bit-identical at any chunk size. *)
let parse_chunk v =
  match int_of_string_opt (String.trim v) with
  | Some c when c >= 1 -> Ok c
  | Some c -> Error (Printf.sprintf "chunk size %d is not a positive integer" c)
  | None -> Error (Printf.sprintf "bad chunk size %S: expected a positive integer" v)

let chunk_override = Atomic.make None

let set_default_chunk c =
  if c < 1 then
    invalid_arg (Printf.sprintf "Pool.set_default_chunk: chunk must be positive (got %d)" c)
  else Atomic.set chunk_override (Some c)

let clear_default_chunk () = Atomic.set chunk_override None

(* Like VARTUNE_JOBS, a malformed value is rejected loudly; the CLI
   pre-validates and turns this into a usage error (exit 64). *)
let env_chunk () =
  match Sys.getenv_opt "VARTUNE_POOL_CHUNK" with
  | None -> None
  | Some v when String.trim v = "" -> None
  | Some v -> (
    match parse_chunk v with
    | Ok c -> Some c
    | Error msg -> invalid_arg (Printf.sprintf "VARTUNE_POOL_CHUNK: %s" msg))

let tasks_per_worker = 8

let resolve_chunk ?chunk pool ~items =
  match chunk with
  | Some c -> max 1 c
  | None -> (
    match Atomic.get chunk_override with
    | Some c -> c
    | None -> (
      match env_chunk () with
      | Some c -> c
      | None -> max 1 (items / (pool.jobs * tasks_per_worker))))

let chunk_for pool ~items = resolve_chunk pool ~items

let c_tasks = Obs.Counter.make "pool.tasks_run"
let c_restarts = Obs.Counter.make "pool.worker_restarts"

(* Wraps one dequeued task in a span on the executing domain's track and
   charges its duration to that domain's busy-time histogram.  Task
   bodies settle failures through their result slot, so the busy-time
   accounting after [span] always runs. *)
let run_task run =
  if not (Obs.enabled ()) then run ()
  else begin
    let t0 = Obs.now_ns () in
    Obs.span "pool.task" run;
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) *. 1e-9 in
    Obs.observe ("pool.worker." ^ string_of_int (Domain.self () :> int) ^ ".busy_s") dt;
    Obs.Counter.incr c_tasks
  end

(* Worker domains die in two ways: an injected [Worker_crash] fault
   (fired at dequeue, before the task body starts, so a requeued task
   can never settle twice) or a real exception escaping [run] (task
   bodies catch their own, so this is catastrophic).  Either way the
   crashed worker's last act is to requeue or abandon its task and
   spawn a replacement domain — [map] callers never deadlock on a lost
   task. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
      if pool.closed then None
      else begin
        Condition.wait pool.nonempty pool.lock;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock pool.lock;
  match task with
  | None -> ()
  | Some task ->
    if Fault.fires Fault.Worker_crash ~site:"pool.worker" then
      crash_out pool task "injected worker_crash fault"
    else begin
      Atomic.incr pool.in_flight_tasks;
      match run_task task.run with
      | () ->
        Atomic.decr pool.in_flight_tasks;
        worker_loop pool
      | exception exn ->
        Atomic.decr pool.in_flight_tasks;
        crash_out pool task (Printexc.to_string exn)
    end

and crash_out pool task reason =
  Atomic.incr pool.restarts;
  Obs.Counter.incr c_restarts;
  task.attempts <- task.attempts + 1;
  let abandon = task.attempts >= max_task_attempts in
  if abandon then begin
    let msg =
      Printf.sprintf "task lost %d worker domains (last: %s); giving up" task.attempts
        reason
    in
    Log.err (fun m -> m "%s" msg);
    task.abandon msg
  end
  else
    Log.warn (fun m ->
        m "worker domain crashed (%s); requeueing task (attempt %d/%d) and restarting"
          reason task.attempts max_task_attempts);
  Mutex.lock pool.lock;
  if not abandon then begin
    Queue.add task pool.queue;
    Condition.broadcast pool.nonempty
  end;
  (* Spawn the replacement while holding the lock so a concurrent
     [shutdown] either sees [closed] here or joins the new domain. *)
  if not pool.closed then
    pool.workers <- Domain.spawn (fun () -> worker_loop pool) :: pool.workers;
  Mutex.unlock pool.lock
(* the crashed domain's worker_loop ends here: the domain dies *)

let create ?jobs ?stall_timeout_s () =
  let jobs = resolve_jobs jobs in
  let stall_timeout_s =
    match stall_timeout_s with
    | Some s when s > 0.0 -> s
    | Some s -> invalid_arg (Printf.sprintf "Pool.create: stall timeout %g must be > 0" s)
    | None -> env_stall_timeout ()
  in
  let pool =
    {
      jobs;
      stall_timeout_s;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      restarts = Atomic.make 0;
      in_flight_tasks = Atomic.make 0;
      closed = false;
      workers = [];
    }
  in
  (* The submitting domain drains the queue too, so jobs - 1 extra
     domains give jobs-way concurrency; jobs = 1 spawns nothing and is
     the exact serial path. *)
  if jobs > 1 then
    pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs t = t.jobs
let restarts t = Atomic.get t.restarts
let in_flight t = Atomic.get t.in_flight_tasks
let queued t = Mutex.protect t.lock (fun () -> Queue.length t.queue)

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* Crashing workers may still be appending replacement domains; keep
     joining until the list stays empty. *)
  let rec drain () =
    Mutex.lock t.lock;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    if workers <> [] then begin
      List.iter Domain.join workers;
      drain ()
    end
  in
  drain ()

(* Pops one queued task and runs it; [false] when the queue is empty.
   Runs on the submitting domain, which is immortal: no crash faults
   are consulted here, and a catastrophic escape abandons the task
   instead of killing the caller. *)
let try_run_one t =
  Mutex.lock t.lock;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.lock;
  match task with
  | None -> false
  | Some task ->
    Atomic.incr t.in_flight_tasks;
    (try run_task task.run
     with exn ->
       task.abandon (Printf.sprintf "task body raised uncaught %s" (Printexc.to_string exn)));
    Atomic.decr t.in_flight_tasks;
    true

let c_enqueued = Obs.Counter.make "pool.tasks_enqueued"

let map_array_impl pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.jobs <= 1 || n = 1 then Array.map f xs
  else begin
    if pool.closed then invalid_arg "Pool: pool is shut down";
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    (* Settling is single-writer per slot — a task instance runs on one
       domain at a time and is only requeued after its holder died
       before the body started — so the Some check is belt-and-braces
       against double-abandon, not a synchronisation point. *)
    let settle i r =
      match results.(i) with
      | Some _ -> ()
      | None ->
        results.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_lock;
          Condition.broadcast done_cond;
          Mutex.unlock done_lock
        end
    in
    let make_task i =
      {
        attempts = 0;
        run =
          (fun () ->
            let r =
              try Ok (f xs.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            settle i r);
        abandon =
          (fun reason ->
            settle i (Error (Worker_failure reason, Printexc.get_callstack 0)));
      }
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.add (make_task i) pool.queue
    done;
    let depth = Queue.length pool.queue in
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    if Obs.enabled () then begin
      Obs.Counter.add c_enqueued n;
      Obs.observe "pool.queue_depth" (float_of_int depth)
    end;
    (* Help drain the queue (our tasks or anyone else's), then wait for
       the stragglers still running on other domains. *)
    while try_run_one pool do
      ()
    done;
    if pool.stall_timeout_s = infinity then begin
      Mutex.lock done_lock;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock
    end
    else begin
      (* Watchdog wait: poll for completion, keep helping with requeued
         tasks, and fail cleanly if nothing progresses for the grace
         period — a lost wakeup or wedged worker must not hang the
         pipeline forever. *)
      let last_remaining = ref (Atomic.get remaining) in
      let last_progress = ref (Unix.gettimeofday ()) in
      while Atomic.get remaining > 0 do
        if not (try_run_one pool) then Unix.sleepf 0.001;
        let r = Atomic.get remaining in
        if r <> !last_remaining then begin
          last_remaining := r;
          last_progress := Unix.gettimeofday ()
        end
        else if r > 0 && Unix.gettimeofday () -. !last_progress > pool.stall_timeout_s
        then
          raise
            (Worker_failure
               (Printf.sprintf
                  "pool stalled: %d task(s) made no progress for %.1fs (stuck worker?)" r
                  pool.stall_timeout_s))
      done
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_array pool f xs =
  if not (Obs.enabled ()) then map_array_impl pool f xs
  else
    Obs.span "pool.map"
      ~attrs:(fun () ->
        [ ("items", string_of_int (Array.length xs)); ("jobs", string_of_int pool.jobs) ])
      (fun () -> map_array_impl pool f xs)

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let init pool ?chunk n f =
  if n <= 0 then [||]
  else begin
    let chunk = resolve_chunk ?chunk pool ~items:n in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks = 1 then Array.init n f
    else
      let parts =
        map_array pool
          (fun c ->
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            Array.init (hi - lo) (fun k -> f (lo + k)))
          (Array.init nchunks Fun.id)
      in
      Array.concat (Array.to_list parts)
  end

(* Chunked counterpart of [map_array]: contiguous blocks of [chunk]
   items ride in one task.  Within a block, items are applied strictly
   in ascending index order, so the first exception of the lowest
   failing block is the lowest-index exception overall — the same
   contract as the per-item map. *)
let map_array_chunked pool ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk = resolve_chunk ?chunk pool ~items:n in
    let nchunks = (n + chunk - 1) / chunk in
    if pool.jobs <= 1 || nchunks = 1 then Array.map f xs
    else
      let parts =
        map_array pool
          (fun c ->
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            let out = Array.make (hi - lo) (f xs.(lo)) in
            for k = 1 to hi - lo - 1 do
              out.(k) <- f xs.(lo + k)
            done;
            out)
          (Array.init nchunks Fun.id)
      in
      Array.concat (Array.to_list parts)
  end

let map_chunked pool ?chunk f xs =
  Array.to_list (map_array_chunked pool ?chunk f (Array.of_list xs))

let map_reduce pool ~map:f ~combine ~init xs =
  List.fold_left combine init (map pool f xs)

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  pool

let set_default_jobs jobs =
  let fresh = create ~jobs () in
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := Some fresh;
  Mutex.unlock default_lock;
  Option.iter shutdown old
