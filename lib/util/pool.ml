module Obs = Vartune_obs.Obs

let src = Logs.Src.create "vartune.pool" ~doc:"domain worker pool"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Job-count precedence: an explicit [~jobs] (the --jobs flag) wins,
   then VARTUNE_JOBS, then the recommended domain count.  A VARTUNE_JOBS
   value that is not a positive integer is rejected loudly — silently
   falling back used to hide typos like VARTUNE_JOBS=0. *)
let env_jobs () =
  match Sys.getenv_opt "VARTUNE_JOBS" with
  | None -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some j when j >= 1 -> Some j
    | Some _ | None ->
      Log.warn (fun m ->
          m "ignoring VARTUNE_JOBS=%S: expected a positive integer, using %d (recommended \
             domain count)"
            v
            (Domain.recommended_domain_count ()));
      None)

let resolve_jobs = function
  | Some j -> max 1 j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

let c_tasks = Obs.Counter.make "pool.tasks_run"

(* Wraps one dequeued task in a span on the executing domain's track and
   charges its duration to that domain's busy-time histogram.  Tasks
   queued by [map_array] never raise (failures travel through the result
   slot), so the busy-time accounting after [span] always runs. *)
let run_task task =
  if not (Obs.enabled ()) then task ()
  else begin
    let t0 = Obs.now_ns () in
    Obs.span "pool.task" task;
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) *. 1e-9 in
    Obs.observe ("pool.worker." ^ string_of_int (Domain.self () :> int) ^ ".busy_s") dt;
    Obs.Counter.incr c_tasks
  end

let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
      if pool.closed then None
      else begin
        Condition.wait pool.nonempty pool.lock;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock pool.lock;
  match task with
  | None -> ()
  | Some task ->
    run_task task;
    worker_loop pool

let create ?jobs () =
  let jobs = resolve_jobs jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  (* The submitting domain drains the queue too, so jobs - 1 extra
     domains give jobs-way concurrency; jobs = 1 spawns nothing and is
     the exact serial path. *)
  if jobs > 1 then
    pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Pops one queued task and runs it; [false] when the queue is empty. *)
let try_run_one t =
  Mutex.lock t.lock;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.lock;
  match task with
  | None -> false
  | Some task ->
    run_task task;
    true

let c_enqueued = Obs.Counter.make "pool.tasks_enqueued"

let map_array_impl pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.jobs <= 1 || n = 1 then Array.map f xs
  else begin
    if pool.closed then invalid_arg "Pool: pool is shut down";
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let task i () =
      let r =
        try Ok (f xs.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.broadcast done_cond;
        Mutex.unlock done_lock
      end
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.add (task i) pool.queue
    done;
    let depth = Queue.length pool.queue in
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    if Obs.enabled () then begin
      Obs.Counter.add c_enqueued n;
      Obs.observe "pool.queue_depth" (float_of_int depth)
    end;
    (* Help drain the queue (our tasks or anyone else's), then wait for
       the stragglers still running on other domains. *)
    while try_run_one pool do
      ()
    done;
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_array pool f xs =
  if not (Obs.enabled ()) then map_array_impl pool f xs
  else
    Obs.span "pool.map"
      ~attrs:(fun () ->
        [ ("items", string_of_int (Array.length xs)); ("jobs", string_of_int pool.jobs) ])
      (fun () -> map_array_impl pool f xs)

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let init pool ?(chunk = 16) n f =
  if n <= 0 then [||]
  else begin
    let chunk = max 1 chunk in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks = 1 then Array.init n f
    else
      let parts =
        map_array pool
          (fun c ->
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            Array.init (hi - lo) (fun k -> f (lo + k)))
          (Array.init nchunks Fun.id)
      in
      Array.concat (Array.to_list parts)
  end

let map_reduce pool ~map:f ~combine ~init xs =
  List.fold_left combine init (map pool f xs)

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  pool

let set_default_jobs jobs =
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := Some (create ~jobs ());
  Mutex.unlock default_lock;
  Option.iter shutdown old
