(** Fixed-size domain worker pool with a deterministic ordered map API.

    Every parallel stage of the pipeline routes through this module.  The
    contract that makes parallelism safe to adopt everywhere is
    {e scheduling-independence}: [map]/[init]/[map_reduce] return results
    in input order, re-raise the lowest-index exception, and never let the
    number of workers influence which element is computed from which
    input.  Combined with per-item RNG streams ({!Rng.stream}) the whole
    pipeline is bit-for-bit identical at any job count.

    A pool of [jobs = 1] spawns no domains at all and executes every task
    in the calling domain — the exact serial fallback.  With [jobs = n]
    the pool runs [n - 1] worker domains and the submitting domain also
    drains the queue, so [n] tasks execute concurrently.

    Tasks must not block on external conditions; they may submit nested
    work to the same pool (the submitting domain helps drain the queue,
    so nested maps cannot deadlock the pool).

    {2 Job-count precedence}

    The pool size is resolved, highest priority first, from:

    + an explicit [~jobs] argument — this is what the [--jobs] / [-j]
      command-line flag passes down;
    + the [VARTUNE_JOBS] environment variable;
    + [Domain.recommended_domain_count ()].

    A [VARTUNE_JOBS] value that is not a positive integer (e.g. [0],
    [-2] or garbage) is {e rejected with a [Logs] warning} on the
    [vartune.pool] source and the recommended domain count is used
    instead — it is never silently clamped.  An explicit [~jobs] that
    is not positive raises [Invalid_argument]: flags are validated at
    parse time, so a bad value reaching {!create} is a caller bug.

    {2 Crash recovery}

    A worker domain that dies — via an injected
    {!Vartune_fault.Fault.Worker_crash} fault or an exception escaping
    a task body — requeues (or, after [8] attempts, abandons) the task
    it held and spawns a replacement domain before expiring, so a
    [map] in flight never loses a result slot.  Crash faults fire at
    dequeue, before the task body starts, so a requeued task re-runs
    from scratch and the slot-indexed results keep the jobs=1-identical
    output ordering.  An abandoned task settles its slot with
    {!Worker_failure}, which [map] re-raises after all slots settle —
    the pipeline fails cleanly instead of hanging.  The submitting
    domain never crash-injects (it is the one collecting results), so
    [jobs = 1] remains the exact, fault-free serial path.

    When a stall timeout is configured (the [~stall_timeout_s] argument
    or [VARTUNE_POOL_STALL_S], seconds; disabled by default), the
    completion wait turns into a watchdog: if no task settles for that
    long while nothing is left to help with, [map] raises
    {!Worker_failure} instead of waiting forever on a wedged worker.
    A [VARTUNE_POOL_STALL_S] value that is negative, zero, NaN or
    non-numeric raises [Invalid_argument] (see
    {!parse_stall_timeout}) — a typo must not silently disarm the
    watchdog.

    {2 Telemetry}

    When {!Vartune_obs.Obs} is enabled the pool records a [pool.map]
    span per parallel map, a [pool.task] span per executed task on the
    executing domain's track, counters [pool.tasks_enqueued] /
    [pool.tasks_run], a [pool.queue_depth] histogram sampled at submit
    time, per-domain [pool.worker.<id>.busy_s] busy-time histograms,
    and a [pool.worker_restarts] counter for crash recoveries.
    Disabled telemetry costs one flag check per operation and cannot
    affect results either way. *)

type t

exception Worker_failure of string
(** A task could not be completed by any worker: it was abandoned after
    repeated worker crashes, or the stall watchdog expired.  Maps to
    the temporary-failure exit code at the CLI. *)

val create : ?jobs:int -> ?stall_timeout_s:float -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers.  Raises
    [Invalid_argument] if [jobs < 1] (or [stall_timeout_s <= 0]).
    Without [jobs], the size follows the precedence above: a valid
    [VARTUNE_JOBS], else [Domain.recommended_domain_count ()].
    [stall_timeout_s] arms the stall watchdog described above; it
    defaults to [VARTUNE_POOL_STALL_S], else disabled. *)

val jobs : t -> int
(** Worker count the pool was created with. *)

val restarts : t -> int
(** Number of worker domains restarted after crashes since the pool was
    created. *)

val in_flight : t -> int
(** Tasks currently executing on some domain — dequeued but not yet
    settled or requeued.  Together with {!queued} this is the drain
    condition checkpoint supervisors rely on: when both are 0 after a
    [map] returns, no journaled work can be lost to an in-flight task. *)

val queued : t -> int
(** Tasks waiting in the queue right now. *)

val parse_stall_timeout : string -> (float, string) result
(** Validates a stall-timeout token ([VARTUNE_POOL_STALL_S] syntax):
    a positive number of seconds.  Negative, zero, NaN and non-numeric
    values are errors naming the offending token.  The environment
    path raises [Invalid_argument] on a malformed value instead of
    warn-and-ignore; the CLI pre-validates and exits 64. *)

val shutdown : t -> unit
(** Terminates the worker domains.  Outstanding tasks are drained first;
    using the pool after shutdown raises [Invalid_argument]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs] with the applications distributed
    across the pool.  Results are in input order.  If any application
    raises, the exception of the lowest-index failing element is
    re-raised in the caller (after all tasks have settled). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val init : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init pool ~chunk n f] is [Array.init n f] evaluated in parallel.
    Indices are grouped into contiguous blocks of [chunk] (resolved as
    described under {{!section:chunking} Chunked submission}) so cheap
    per-index work amortises task overhead; chunking never affects the
    result, only the granularity of dispatch. *)

(** {2:chunking Chunked submission}

    [map_chunked] / [map_array_chunked] / [init] batch contiguous index
    blocks of [chunk] items into one pool task, amortising the per-task
    closure, boxing and queue-handoff overhead that made fine-grained
    stages slower than serial.  The chunk size is resolved, highest
    priority first, from:

    + an explicit [?chunk] argument at the call site;
    + {!set_default_chunk} — this is what the [--chunk] command-line
      flag passes down;
    + the [VARTUNE_POOL_CHUNK] environment variable (a malformed value
      raises [Invalid_argument]; the CLI pre-validates and exits 64
      naming the token);
    + an automatic size of [max 1 (items / (jobs * 8))], aiming for
      about eight tasks per worker so scheduling stays balanced.

    Chunking is {e granularity only}: items are still applied in
    ascending index order within each block, results come back in input
    order, and the lowest-index exception is re-raised — so the result
    (value {e and} failure) is bit-identical at any chunk size, any job
    count, and under crash requeue.  Checkpoint supervisors are
    unaffected: a chunked stage still drains ([queued] = [in_flight] =
    0) before its round completes. *)

val map_chunked : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunked pool ~chunk f xs] is {!map} with [chunk] consecutive
    items batched per pool task. *)

val map_array_chunked : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map_chunked}. *)

val chunk_for : t -> items:int -> int
(** The chunk size a call without [?chunk] would use for [items] items
    on this pool (override, else environment, else automatic) — exposed
    so benchmarks can report the granularity each stage actually ran
    with. *)

val parse_chunk : string -> (int, string) result
(** Validates a chunk-size token ([VARTUNE_POOL_CHUNK] / [--chunk]
    syntax): a positive integer.  Zero, negative and non-numeric values
    are errors naming the offending token. *)

val set_default_chunk : int -> unit
(** Overrides the process-wide default chunk size (the [--chunk] flag).
    Raises [Invalid_argument] if the size is not positive.  Call before
    heavy work starts. *)

val clear_default_chunk : unit -> unit
(** Removes a {!set_default_chunk} override, restoring environment /
    automatic resolution.  Mainly for tests. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce pool ~map ~combine ~init xs] applies [map] in parallel
    and folds [combine] over the results {e in input order} — the
    reduction itself is sequential and deterministic. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with [create ()].
    Thread-safe. *)

val set_default_jobs : int -> unit
(** Replaces the default pool with one of the given size (shutting the
    old one down).  Raises [Invalid_argument] if the size is not
    positive, before touching the existing pool.  Used by the [--jobs]
    command-line flag; call it before heavy work starts. *)
