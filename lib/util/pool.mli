(** Fixed-size domain worker pool with a deterministic ordered map API.

    Every parallel stage of the pipeline routes through this module.  The
    contract that makes parallelism safe to adopt everywhere is
    {e scheduling-independence}: [map]/[init]/[map_reduce] return results
    in input order, re-raise the lowest-index exception, and never let the
    number of workers influence which element is computed from which
    input.  Combined with per-item RNG streams ({!Rng.stream}) the whole
    pipeline is bit-for-bit identical at any job count.

    A pool of [jobs = 1] spawns no domains at all and executes every task
    in the calling domain — the exact serial fallback.  With [jobs = n]
    the pool runs [n - 1] worker domains and the submitting domain also
    drains the queue, so [n] tasks execute concurrently.

    Tasks must not block on external conditions; they may submit nested
    work to the same pool (the submitting domain helps drain the queue,
    so nested maps cannot deadlock the pool). *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers (clamped to >= 1).
    Without [jobs], the size comes from the [VARTUNE_JOBS] environment
    variable, falling back to [Domain.recommended_domain_count ()]. *)

val jobs : t -> int
(** Worker count the pool was created with. *)

val shutdown : t -> unit
(** Terminates the worker domains.  Outstanding tasks are drained first;
    using the pool after shutdown raises [Invalid_argument]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs] with the applications distributed
    across the pool.  Results are in input order.  If any application
    raises, the exception of the lowest-index failing element is
    re-raised in the caller (after all tasks have settled). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val init : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init pool ~chunk n f] is [Array.init n f] evaluated in parallel.
    Indices are grouped into contiguous blocks of [chunk] (default [16])
    so cheap per-index work amortises task overhead; chunking never
    affects the result, only the granularity of dispatch. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce pool ~map ~combine ~init xs] applies [map] in parallel
    and folds [combine] over the results {e in input order} — the
    reduction itself is sequential and deterministic. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with [create ()].
    Thread-safe. *)

val set_default_jobs : int -> unit
(** Replaces the default pool with one of the given size (shutting the
    old one down).  Used by the [--jobs] command-line flag; call it
    before heavy work starts. *)
