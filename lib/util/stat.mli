(** Small descriptive-statistics toolkit used throughout the project. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] for n < 2. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val population_variance : float array -> float
(** Population variance (divides by [n]). *)

val coefficient_of_variation : float array -> float
(** [stddev / mean] — the paper's "variability" metric (eq. 1). *)

val min_max : float array -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on empty. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,1\]]; linear interpolation between
    order statistics.  Does not mutate its argument. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] buckets the samples into [bins] equal-width bins
    over [\[min, max\]]; each cell is [(lo, hi, count)]. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length series. *)

val correlation : float array -> float array -> float
(** Pearson correlation; [0.] if either series is constant. *)

(** Streaming mean/variance accumulation (Welford) with the pairwise
    partial-merge of Chan et al. — the scalar reference for the
    domain-parallel merges used by the statistical library builder.
    Merging block accumulators left-to-right in index order yields a
    result independent of how the blocks were scheduled. *)
module Welford : sig
  type t

  val create : unit -> t
  val copy : t -> t

  val add : t -> float -> unit
  (** Streams one observation into the accumulator. *)

  val merge : t -> t -> t
  (** [merge a b] combines two partials covering disjoint sample sets;
      [a] is the left (lower-index) block.  Neither input is mutated. *)

  val count : t -> int
  val mean : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] for fewer than two observations. *)

  val stddev : t -> float
end
