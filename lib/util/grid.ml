type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid: dimensions must be positive"

let create ~rows ~cols v =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) v }

let init ~rows ~cols f =
  check_dims rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_flat ~rows ~cols data =
  check_dims rows cols;
  if Array.length data <> rows * cols then invalid_arg "Grid.of_flat: length mismatch";
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Grid.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Grid.of_arrays: empty row";
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Grid.of_arrays: ragged") a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows g = g.rows
let cols g = g.cols

let index g i j =
  if i < 0 || i >= g.rows || j < 0 || j >= g.cols then invalid_arg "Grid: index out of bounds";
  (i * g.cols) + j

let get g i j = g.data.(index g i j)
let set g i j v = g.data.(index g i j) <- v

(* Unchecked accessors for inner loops whose indices were validated
   once, up front (e.g. LUT interpolation over axes the constructor
   checked).  Out-of-range indices are undefined behaviour. *)
let unsafe_get g i j = Array.unsafe_get g.data ((i * g.cols) + j)
let unsafe_set g i j v = Array.unsafe_set g.data ((i * g.cols) + j) v

(* The live row-major backing, not a copy: the flat kernels (Welford
   merge, bilinear interpolation, codec IO) iterate it directly.
   Writes alias the grid. *)
let unsafe_data g = g.data

let to_arrays g = Array.init g.rows (fun i -> Array.init g.cols (fun j -> get g i j))

let map f g = { g with data = Array.map f g.data }

let mapi f g =
  { g with data = Array.mapi (fun k v -> f (k / g.cols) (k mod g.cols) v) g.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Grid.map2: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let fold f init g = Array.fold_left f init g.data
let iteri f g = Array.iteri (fun k v -> f (k / g.cols) (k mod g.cols) v) g.data

let max_value g = fold (fun acc v -> if v > acc then v else acc) neg_infinity g
let min_value g = fold (fun acc v -> if v < acc then v else acc) infinity g

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf g =
  for i = 0 to g.rows - 1 do
    for j = 0 to g.cols - 1 do
      if j > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "%10.6f" (get g i j)
    done;
    if i < g.rows - 1 then Format.pp_print_newline ppf ()
  done
