let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stat.mean: empty array";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let sum_sq_dev a =
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0 else sum_sq_dev a /. float_of_int (n - 1)

let population_variance a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stat.population_variance: empty array";
  sum_sq_dev a /. float_of_int n

let stddev a = sqrt (variance a)

let coefficient_of_variation a =
  let m = mean a in
  if m = 0.0 then invalid_arg "Stat.coefficient_of_variation: zero mean";
  stddev a /. m

let min_max a =
  if Array.length a = 0 then invalid_arg "Stat.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (a.(0), a.(0)) a

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stat.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stat.percentile: p out of range";
  let sorted = Array.copy a in
  (* Float.compare, not polymorphic compare: same order on reals, but
     monomorphic (no boxed generic-compare call per element) and a
     total order on NaN instead of the polymorphic NaN muddle. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let histogram ~bins a =
  if bins <= 0 then invalid_arg "Stat.histogram: bins must be positive";
  let lo, hi = min_max a in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let clamp i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
  Array.iter
    (fun x ->
      let i = clamp (int_of_float ((x -. lo) /. width)) in
      counts.(i) <- counts.(i) + 1)
    a;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let covariance a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stat.covariance: length mismatch";
  if n < 2 then 0.0
  else begin
    let ma = mean a and mb = mean b in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. ((a.(i) -. ma) *. (b.(i) -. mb))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation a b =
  let sa = stddev a and sb = stddev b in
  if sa = 0.0 || sb = 0.0 then 0.0 else covariance a b /. (sa *. sb)

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }
  let copy t = { n = t.n; mean = t.mean; m2 = t.m2 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  (* Chan et al. pairwise combination of two partial accumulators.  The
     parallel merge convention throughout the project: partials cover
     fixed contiguous index blocks and are combined left-to-right in
     block order, so the result never depends on which worker computed
     which block. *)
  let merge a b =
    if a.n = 0 then copy b
    else if b.n = 0 then copy a
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      {
        n = a.n + b.n;
        mean = a.mean +. (delta *. (nb /. n));
        m2 = a.m2 +. b.m2 +. (delta *. delta *. (na *. nb /. n));
      }
    end

  let count t = t.n
  let mean t = if t.n = 0 then invalid_arg "Welford.mean: empty" else t.mean

  (* [m2] is mathematically non-negative, but the streaming update and
     the pairwise merge both subtract nearly equal quantities, so heavy
     cancellation (near-constant data) can leave a tiny negative residue
     like -1e-18.  Clamp it — otherwise [stddev] is sqrt of a negative
     and silently poisons everything downstream with NaN.  A genuine NaN
     input still propagates: only negatives are clamped. *)
  let variance t =
    if t.n < 2 then 0.0
    else begin
      let v = t.m2 /. float_of_int (t.n - 1) in
      if v < 0.0 then 0.0 else v
    end

  let stddev t = sqrt (variance t)
end
