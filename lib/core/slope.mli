(** Slope tables of a sigma LUT (Section VI-B, eqs. 12–13).

    The slope in each axis direction flags regions where a small increase
    in slew or load produces a large sigma increase; tuning avoids those
    regions.  Following the paper, the first row (slew direction) or first
    column (load direction) of a slope table is zero because the backward
    difference has no predecessor there. *)

val slew_slope : Vartune_liberty.Lut.t -> Vartune_liberty.Lut.t
(** eq. (12): backward difference along the slew axis divided by the slew
    step, in sigma-units per ns. *)

val load_slope : Vartune_liberty.Lut.t -> Vartune_liberty.Lut.t
(** eq. (13): backward difference along the load axis divided by the load
    step, in sigma-units per pF. *)

val max_equivalent_by_index : Vartune_liberty.Lut.t list -> Vartune_liberty.Lut.t
(** Entry-wise maximum of same-dimension tables matched by index, not by
    axis value — how the paper merges a cluster of cells whose load
    ranges differ.  The result carries the first table's axes.
    Raises [Invalid_argument] on an empty list or dimension mismatch. *)
