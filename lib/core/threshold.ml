module Lut = Vartune_liberty.Lut

type criterion = Load_slope of float | Slew_slope of float | Sigma_ceiling of float

type defaults = { load_bound : float; slew_bound : float }

let paper_defaults = { load_bound = 1.0; slew_bound = 0.06 }

let slope_masks lut ~load_bound ~slew_bound =
  let load_mask = Binary_lut.of_threshold (Slope.load_slope lut) ~threshold:load_bound in
  let slew_mask = Binary_lut.of_threshold (Slope.slew_slope lut) ~threshold:slew_bound in
  Binary_lut.logical_and load_mask slew_mask

let extract_slope_threshold lut ~load_bound ~slew_bound =
  let mask = slope_masks lut ~load_bound ~slew_bound in
  match Rectangle.naive_largest mask with
  | None -> None
  | Some rect ->
    let row, col = Rectangle.far_corner rect in
    Some (Lut.get lut row col)

let of_criterion ?(defaults = paper_defaults) criterion ~cluster_lut =
  match criterion with
  | Sigma_ceiling ceiling -> Some ceiling
  | Load_slope bound ->
    extract_slope_threshold cluster_lut ~load_bound:bound ~slew_bound:defaults.slew_bound
  | Slew_slope bound ->
    extract_slope_threshold cluster_lut ~load_bound:defaults.load_bound ~slew_bound:bound

let criterion_to_string = function
  | Load_slope b -> Printf.sprintf "load_slope<%g" b
  | Slew_slope b -> Printf.sprintf "slew_slope<%g" b
  | Sigma_ceiling c -> Printf.sprintf "sigma<=%g" c
