(** Largest all-ones rectangle in a binary LUT (Algorithm 1, Fig. 6).

    The rectangle found in the flat region of a binary LUT defines the
    (slew, load) window a cell may operate in. *)

type t = {
  row_lo : int;
  col_lo : int;
  row_hi : int;  (** inclusive *)
  col_hi : int;  (** inclusive *)
}

val area : t -> int

val contains : t -> row:int -> col:int -> bool

val naive_largest : Binary_lut.t -> t option
(** Algorithm 1 verbatim: exhaustive enumeration of all rectangles in
    loop order (lower-left coordinates outermost), keeping the first
    rectangle strictly larger than the best so far — hence the result is
    the maximal rectangle "starting as close as possible to the origin".
    [None] when the mask has no ones.  O(n²m²) rectangles, each verified
    in O(nm). *)

val largest : Binary_lut.t -> t option
(** Histogram-stack maximal-rectangle algorithm, O(nm).  Returns exactly
    the rectangle {!naive_largest} returns — coordinates included, not
    merely the same area: equal-area maxima are tie-broken to the
    lexicographically smallest (row_lo, col_lo, row_hi, col_hi), which
    is the naive loop order's first find.  The extracted slew/load
    window is therefore independent of which implementation ran. *)

val far_corner : t -> int * int
(** The (row, col) of the rectangle corner furthest from the LUT origin —
    the entry whose sigma becomes the extracted threshold. *)
