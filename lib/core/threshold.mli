(** Sigma-threshold extraction (Section VI-B).

    For the slope-bound methods, the cluster's maximum-equivalent sigma
    LUT is converted to load- and slew-slope tables, both are thresholded
    into binary masks (one bound swept, the other at its default), the
    masks are conjoined, and the largest all-ones rectangle yields the
    threshold: the sigma at the rectangle corner furthest from the
    origin.  The sigma-ceiling method uses its bound directly. *)

type criterion =
  | Load_slope of float
  | Slew_slope of float
  | Sigma_ceiling of float

type defaults = {
  load_bound : float;  (** applied when the load slope is not swept *)
  slew_bound : float;  (** applied when the slew slope is not swept *)
}

val paper_defaults : defaults
(** Table 2: load 1.0, slew 0.06 (the sigma-ceiling default of 100 means
    "no ceiling" and needs no representation here). *)

val slope_masks :
  Vartune_liberty.Lut.t -> load_bound:float -> slew_bound:float -> Binary_lut.t
(** The conjoined binary mask of both slope tables. *)

val extract_slope_threshold :
  Vartune_liberty.Lut.t -> load_bound:float -> slew_bound:float -> float option
(** Largest-rectangle threshold extraction on the conjoined mask; [None]
    when no flat region exists. *)

val of_criterion :
  ?defaults:defaults -> criterion -> cluster_lut:Vartune_liberty.Lut.t -> float option
(** The sigma threshold a criterion assigns to a cluster. *)

val criterion_to_string : criterion -> string
