type t = { row_lo : int; col_lo : int; row_hi : int; col_hi : int }

let area r = (r.row_hi - r.row_lo + 1) * (r.col_hi - r.col_lo + 1)
let contains r ~row ~col = row >= r.row_lo && row <= r.row_hi && col >= r.col_lo && col <= r.col_hi

(* Algorithm 1 of the paper, transcribed: enumerate every candidate
   rectangle in loop order and keep the first strictly-larger all-ones
   one. *)
let naive_largest mask =
  let n = Binary_lut.rows mask and m = Binary_lut.cols mask in
  let best = ref None in
  let best_area = ref 0 in
  for ll_row = 0 to n - 1 do
    for ll_col = 0 to m - 1 do
      for ur_row = ll_row to n - 1 do
        for ur_col = ll_col to m - 1 do
          let candidate = { row_lo = ll_row; col_lo = ll_col; row_hi = ur_row; col_hi = ur_col } in
          let a = area candidate in
          if
            a > !best_area
            && Binary_lut.all_true_in mask ~row_lo:ll_row ~col_lo:ll_col ~row_hi:ur_row
                 ~col_hi:ur_col
          then begin
            best_area := a;
            best := Some candidate
          end
        done
      done
    done
  done;
  !best

(* Maximal rectangle via per-row histograms of consecutive ones above,
   resolved with a monotonic stack.

   Tie-break: every maximum-area all-ones rectangle is non-extendable
   (an extension would beat it), and the stack emits every
   non-extendable rectangle exactly once, so taking the
   lexicographically smallest (row_lo, col_lo, row_hi, col_hi) among
   equal areas reproduces the first-in-loop-order winner of the paper's
   Algorithm 1 ({!naive_largest}) — the two implementations agree on
   the rectangle itself, not merely its area, keeping the derived
   slew/load window identical. *)
let largest mask =
  let n = Binary_lut.rows mask and m = Binary_lut.cols mask in
  let heights = Array.make m 0 in
  let best = ref None in
  let best_area = ref 0 in
  let consider ~row ~col_lo ~col_hi ~height =
    if height > 0 then begin
      let a = height * (col_hi - col_lo + 1) in
      let candidate = { row_lo = row - height + 1; col_lo; row_hi = row; col_hi } in
      let wins =
        a > !best_area
        || a = !best_area
           &&
           match !best with
           | None -> true
           | Some b ->
             compare
               (candidate.row_lo, candidate.col_lo, candidate.row_hi, candidate.col_hi)
               (b.row_lo, b.col_lo, b.row_hi, b.col_hi)
             < 0
      in
      if wins then begin
        best_area := a;
        best := Some candidate
      end
    end
  in
  for row = 0 to n - 1 do
    for col = 0 to m - 1 do
      heights.(col) <- (if Binary_lut.get mask row col then heights.(col) + 1 else 0)
    done;
    (* stack of (start column, height), heights strictly increasing *)
    let stack = ref [] in
    for col = 0 to m - 1 do
      let start = ref col in
      let h = heights.(col) in
      let rec pop () =
        match !stack with
        | (s, sh) :: rest when sh >= h ->
          consider ~row ~col_lo:s ~col_hi:(col - 1) ~height:sh;
          start := s;
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      stack := (!start, h) :: !stack
    done;
    List.iter (fun (s, sh) -> consider ~row ~col_lo:s ~col_hi:(m - 1) ~height:sh) !stack
  done;
  !best

let far_corner r = (r.row_hi, r.col_hi)
