module Lut = Vartune_liberty.Lut
module Grid = Vartune_util.Grid

let slew_slope lut =
  let slews = Lut.slews lut in
  let rows, cols = Lut.dims lut in
  let values =
    Grid.init ~rows ~cols (fun i j ->
        if i = 0 then 0.0
        else (Lut.get lut i j -. Lut.get lut (i - 1) j) /. (slews.(i) -. slews.(i - 1)))
  in
  Lut.make ~slews ~loads:(Lut.loads lut) ~values

let load_slope lut =
  let loads = Lut.loads lut in
  let rows, cols = Lut.dims lut in
  let values =
    Grid.init ~rows ~cols (fun i j ->
        if j = 0 then 0.0
        else (Lut.get lut i j -. Lut.get lut i (j - 1)) /. (loads.(j) -. loads.(j - 1)))
  in
  Lut.make ~slews:(Lut.slews lut) ~loads ~values

let max_equivalent_by_index = function
  | [] -> invalid_arg "Slope.max_equivalent_by_index: empty list"
  | first :: rest ->
    let rows, cols = Lut.dims first in
    List.iter
      (fun t -> if Lut.dims t <> (rows, cols) then invalid_arg "Slope: dimension mismatch")
      rest;
    let values =
      Grid.init ~rows ~cols (fun i j ->
          List.fold_left (fun acc t -> Float.max acc (Lut.get t i j)) (Lut.get first i j) rest)
    in
    Lut.make ~slews:(Lut.slews first) ~loads:(Lut.loads first) ~values
