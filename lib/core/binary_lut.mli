(** Boolean LUT masks (Section VI-B).

    A binary LUT marks which (slew, load) entries of a table are
    acceptable: 1 where a value passes its threshold, 0 elsewhere. *)

type t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> bool

val of_threshold : Vartune_liberty.Lut.t -> threshold:float -> t
(** Entries strictly below [threshold] become 1 — "all table entries which
    are smaller than the slope threshold become a logic one". *)

val of_ceiling : Vartune_liberty.Lut.t -> ceiling:float -> t
(** Entries at or below [ceiling] become 1 (used for sigma ceilings where
    the bound itself must remain usable). *)

val logical_and : t -> t -> t
(** Pointwise conjunction; dimensions must agree. *)

val all_true_in : t -> row_lo:int -> col_lo:int -> row_hi:int -> col_hi:int -> bool
(** Whether the inclusive rectangle contains only ones. *)

val count_true : t -> int

val of_bool_rows : bool array array -> t
(** For tests; rows must be non-ragged and non-empty. *)

val pp : Format.formatter -> t -> unit
(** Rows of [1]/[.] characters, slew axis downward. *)
