module Lut = Vartune_liberty.Lut

type t = { rows : int; cols : int; bits : bool array }

let rows t = t.rows
let cols t = t.cols

let index t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Binary_lut: index out of bounds";
  (i * t.cols) + j

let get t i j = t.bits.(index t i j)

let of_predicate lut p =
  let rows, cols = Lut.dims lut in
  { rows; cols; bits = Array.init (rows * cols) (fun k -> p (Lut.get lut (k / cols) (k mod cols))) }

let of_threshold lut ~threshold = of_predicate lut (fun v -> v < threshold)
let of_ceiling lut ~ceiling = of_predicate lut (fun v -> v <= ceiling)

let logical_and a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Binary_lut: dimension mismatch";
  { a with bits = Array.init (Array.length a.bits) (fun k -> a.bits.(k) && b.bits.(k)) }

let all_true_in t ~row_lo ~col_lo ~row_hi ~col_hi =
  let ok = ref true in
  for i = row_lo to row_hi do
    for j = col_lo to col_hi do
      if not (get t i j) then ok := false
    done
  done;
  !ok

let count_true t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.bits

let of_bool_rows a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Binary_lut.of_bool_rows: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Binary_lut.of_bool_rows: empty row";
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Binary_lut.of_bool_rows: ragged")
    a;
  { rows; cols; bits = Array.init (rows * cols) (fun k -> a.(k / cols).(k mod cols)) }

let pp ppf t =
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      Format.pp_print_char ppf (if get t i j then '1' else '.')
    done;
    if i < t.rows - 1 then Format.pp_print_newline ppf ()
  done
