module Cell = Vartune_liberty.Cell

type t = { population : Cluster.population; criterion : Threshold.criterion }

(* Shortest decimal that parses back to the same float: %.12g covers the
   friendly sweep values ("0.02"), %.17g is always exact. *)
let float_to_string v =
  let s = Printf.sprintf "%.12g" v in
  if float_of_string s = v || (Float.is_nan v && Float.is_nan (float_of_string s)) then s
  else Printf.sprintf "%.17g" v

let to_string t =
  let criterion, parameter =
    match t.criterion with
    | Threshold.Load_slope b -> ("load", b)
    | Threshold.Slew_slope b -> ("slew", b)
    | Threshold.Sigma_ceiling c -> ("ceiling", c)
  in
  Printf.sprintf "%s/%s=%s"
    (Cluster.population_to_string t.population)
    criterion (float_to_string parameter)

let of_string s =
  let population, rest =
    match String.index_opt s '/' with
    | Some i ->
      let pop =
        match String.sub s 0 i with
        | "cell" -> Some Cluster.Per_cell
        | "strength" -> Some Cluster.Per_drive_strength
        | _ -> None
      in
      (pop, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (Some Cluster.Per_cell, s)
  in
  let criterion =
    match String.index_opt rest '=' with
    | None -> None
    | Some i -> (
      let value = String.sub rest (i + 1) (String.length rest - i - 1) in
      match float_of_string_opt value with
      | None -> None
      | Some v -> (
        match String.sub rest 0 i with
        | "load" -> Some (Threshold.Load_slope v)
        | "slew" -> Some (Threshold.Slew_slope v)
        | "ceiling" -> Some (Threshold.Sigma_ceiling v)
        | _ -> None))
  in
  match (population, criterion) with
  | Some population, Some criterion -> Some { population; criterion }
  | _ -> None

let name = to_string

let short_name t =
  match (t.population, t.criterion) with
  | Cluster.Per_drive_strength, Threshold.Load_slope _ -> "Cell strength load"
  | Cluster.Per_drive_strength, Threshold.Slew_slope _ -> "Cell strength slew"
  | Cluster.Per_drive_strength, Threshold.Sigma_ceiling _ -> "Cell strength ceiling"
  | Cluster.Per_cell, Threshold.Load_slope _ -> "Cell load"
  | Cluster.Per_cell, Threshold.Slew_slope _ -> "Cell slew"
  | Cluster.Per_cell, Threshold.Sigma_ceiling _ -> "Sigma ceiling"

let paper_methods ~bound ~ceiling =
  [
    { population = Cluster.Per_drive_strength; criterion = Threshold.Slew_slope bound };
    { population = Cluster.Per_drive_strength; criterion = Threshold.Load_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Slew_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Load_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling ceiling };
  ]

let restrictions ?defaults t lib =
  let table = Restrict.empty_table () in
  let clusters = Cluster.clusters lib t.population in
  List.iter
    (fun cluster ->
      match Cluster.equivalent_lut cluster with
      | None -> ()
      | Some cluster_lut -> (
        match Threshold.of_criterion ?defaults t.criterion ~cluster_lut with
        | None -> ()
        | Some threshold ->
          List.iter
            (fun (cell : Cell.t) ->
              List.iter
                (fun (pin : Vartune_liberty.Pin.t) ->
                  Restrict.set table ~cell:cell.name ~pin:pin.name
                    (Restrict.pin_window pin ~threshold))
                (Cell.output_pins cell))
            cluster.Cluster.cells))
    clusters;
  table

let parameter t =
  match t.criterion with
  | Threshold.Load_slope b | Threshold.Slew_slope b | Threshold.Sigma_ceiling b -> b

let with_parameter t p =
  let criterion =
    match t.criterion with
    | Threshold.Load_slope _ -> Threshold.Load_slope p
    | Threshold.Slew_slope _ -> Threshold.Slew_slope p
    | Threshold.Sigma_ceiling _ -> Threshold.Sigma_ceiling p
  in
  { t with criterion }
