module Cell = Vartune_liberty.Cell

type t = { population : Cluster.population; criterion : Threshold.criterion }

let name t =
  Printf.sprintf "%s/%s"
    (Cluster.population_to_string t.population)
    (Threshold.criterion_to_string t.criterion)

let short_name t =
  match (t.population, t.criterion) with
  | Cluster.Per_drive_strength, Threshold.Load_slope _ -> "Cell strength load"
  | Cluster.Per_drive_strength, Threshold.Slew_slope _ -> "Cell strength slew"
  | Cluster.Per_drive_strength, Threshold.Sigma_ceiling _ -> "Cell strength ceiling"
  | Cluster.Per_cell, Threshold.Load_slope _ -> "Cell load"
  | Cluster.Per_cell, Threshold.Slew_slope _ -> "Cell slew"
  | Cluster.Per_cell, Threshold.Sigma_ceiling _ -> "Sigma ceiling"

let paper_methods ~bound ~ceiling =
  [
    { population = Cluster.Per_drive_strength; criterion = Threshold.Slew_slope bound };
    { population = Cluster.Per_drive_strength; criterion = Threshold.Load_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Slew_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Load_slope bound };
    { population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling ceiling };
  ]

let restrictions ?defaults t lib =
  let table = Restrict.empty_table () in
  let clusters = Cluster.clusters lib t.population in
  List.iter
    (fun cluster ->
      match Cluster.equivalent_lut cluster with
      | None -> ()
      | Some cluster_lut -> (
        match Threshold.of_criterion ?defaults t.criterion ~cluster_lut with
        | None -> ()
        | Some threshold ->
          List.iter
            (fun (cell : Cell.t) ->
              List.iter
                (fun (pin : Vartune_liberty.Pin.t) ->
                  Restrict.set table ~cell:cell.name ~pin:pin.name
                    (Restrict.pin_window pin ~threshold))
                (Cell.output_pins cell))
            cluster.Cluster.cells))
    clusters;
  table

let parameter t =
  match t.criterion with
  | Threshold.Load_slope b | Threshold.Slew_slope b | Threshold.Sigma_ceiling b -> b

let with_parameter t p =
  let criterion =
    match t.criterion with
    | Threshold.Load_slope _ -> Threshold.Load_slope p
    | Threshold.Slew_slope _ -> Threshold.Slew_slope p
    | Threshold.Sigma_ceiling _ -> Threshold.Sigma_ceiling p
  in
  { t with criterion }
