module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library

type window = { slew_min : float; slew_max : float; load_min : float; load_max : float }

type status = Unrestricted | Window of window | Unusable

type table = (string * string, status) Hashtbl.t

let window_allows w ~slew ~load =
  slew >= w.slew_min && slew <= w.slew_max && load >= w.load_min && load <= w.load_max

let pin_window (pin : Pin.t) ~threshold =
  match List.filter_map Arc.worst_sigma pin.arcs with
  | [] -> Unrestricted
  | sigmas -> begin
    let equivalent = Slope.max_equivalent_by_index sigmas in
    (* "Values in the equivalent table which are smaller than the
       threshold will become a logic one" -- <= keeps the ceiling value
       itself usable, matching the sigma-ceiling sweep's intent. *)
    let mask = Binary_lut.of_ceiling equivalent ~ceiling:threshold in
    match Rectangle.naive_largest mask with
    | None -> Unusable
    | Some rect ->
      let slews = Lut.slews equivalent and loads = Lut.loads equivalent in
      Window
        {
          slew_min = slews.(rect.Rectangle.row_lo);
          slew_max = slews.(rect.Rectangle.row_hi);
          load_min = loads.(rect.Rectangle.col_lo);
          load_max = loads.(rect.Rectangle.col_hi);
        }
  end

let empty_table () : table = Hashtbl.create 512
let set table ~cell ~pin status = Hashtbl.replace table (cell, pin) status

let find table ~cell ~pin =
  Option.value (Hashtbl.find_opt table (cell, pin)) ~default:Unrestricted

let allows table ~cell ~pin ~slew ~load =
  match find table ~cell ~pin with
  | Unrestricted -> true
  | Unusable -> false
  | Window w -> window_allows w ~slew ~load

let usable_cell table (cell : Cell.t) =
  List.for_all
    (fun (p : Pin.t) -> find table ~cell:cell.name ~pin:p.name <> Unusable)
    (Cell.output_pins cell)

let restricted_pins table =
  Hashtbl.fold (fun (cell, pin) status acc -> (cell, pin, status) :: acc) table []
  |> List.sort compare

let restriction_fraction table lib =
  let total = ref 0 and removed = ref 0 in
  List.iter
    (fun (cell : Cell.t) ->
      List.iter
        (fun (p : Pin.t) ->
          match p.arcs with
          | [] -> ()
          | arc :: _ ->
            let rows, cols = Lut.dims arc.Arc.rise_delay in
            let entries = rows * cols in
            total := !total + entries;
            (match find table ~cell:cell.name ~pin:p.name with
            | Unrestricted -> ()
            | Unusable -> removed := !removed + entries
            | Window w ->
              let slews = Lut.slews arc.Arc.rise_delay in
              let loads = Lut.loads arc.Arc.rise_delay in
              let kept = ref 0 in
              Array.iter
                (fun s ->
                  Array.iter (fun l -> if window_allows w ~slew:s ~load:l then incr kept) loads)
                slews;
              removed := !removed + entries - !kept))
        (Cell.output_pins cell))
    (Library.cells lib);
  if !total = 0 then 0.0 else float_of_int !removed /. float_of_int !total
