module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Library = Vartune_liberty.Library

type population = Per_cell | Per_drive_strength

type t = { label : string; cells : Cell.t list }

let sigma_luts cell = List.filter_map Arc.worst_sigma (Cell.arcs cell)

let has_sigma cell = sigma_luts cell <> []

let clusters lib population =
  let cells = List.filter has_sigma (Library.cells lib) in
  match population with
  | Per_cell -> List.map (fun (c : Cell.t) -> { label = c.name; cells = [ c ] }) cells
  | Per_drive_strength ->
    let by_drive = Hashtbl.create 32 in
    List.iter
      (fun (c : Cell.t) ->
        let existing = Option.value (Hashtbl.find_opt by_drive c.drive_strength) ~default:[] in
        Hashtbl.replace by_drive c.drive_strength (c :: existing))
      cells;
    Hashtbl.fold
      (fun drive members acc ->
        { label = Printf.sprintf "drive_%d" drive; cells = List.rev members } :: acc)
      by_drive []
    |> List.sort (fun a b -> String.compare a.label b.label)

let equivalent_lut t =
  match List.concat_map sigma_luts t.cells with
  | [] -> None
  | luts -> Some (Slope.max_equivalent_by_index luts)

let population_to_string = function
  | Per_cell -> "cell"
  | Per_drive_strength -> "strength"
