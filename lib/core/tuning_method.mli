(** The five library tuning methods (Section VI, Fig. 10).

    A method pairs a cell population (per cell or per drive strength)
    with a threshold criterion (load slope bound, slew slope bound or
    sigma ceiling).  The paper evaluates:

    - cell-strength-based slew slope bound,
    - cell-strength-based load slope bound,
    - cell-based slew slope bound,
    - cell-based load slope bound,
    - cell-based sigma ceiling. *)

type t = {
  population : Cluster.population;
  criterion : Threshold.criterion;
}

val to_string : t -> string
(** Canonical spelling, e.g. ["strength/load=0.05"] or
    ["cell/ceiling=0.02"]: population ([cell] | [strength]), a slash,
    criterion ([load] | [slew] | [ceiling]) and the parameter printed
    with enough digits to parse back exactly.  This is the {e single}
    spelling used by the CLI [--method] flag, store keys and report
    labels; {!of_string} inverts it for every method. *)

val of_string : string -> t option
(** Parses {!to_string} output; a missing [population/] prefix defaults
    to [cell].  [None] on anything else. *)

val name : t -> string
(** Alias for {!to_string}. *)

val short_name : t -> string
(** The paper's labels: ["Cell strength load"], ["Cell slew"], ... *)

val paper_methods : bound:float -> ceiling:float -> t list
(** The five methods instantiated with the given sweep parameters. *)

val restrictions :
  ?defaults:Threshold.defaults -> t -> Vartune_liberty.Library.t -> Restrict.table
(** Runs both tuning stages on a statistical library: cluster, extract a
    threshold per cluster, then restrict every output pin of every member
    cell.  Clusters with no extractable threshold leave their cells
    unrestricted. *)

val parameter : t -> float
(** The sweep parameter embedded in the criterion. *)

val with_parameter : t -> float -> t
