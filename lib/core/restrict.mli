(** Per-pin look-up-table restriction (Section VI-C).

    Synthesis tools confine a LUT per output pin, so the worst case over
    that pin's arcs is taken: the maximum-equivalent sigma LUT is
    thresholded into a binary mask and the largest all-ones rectangle
    becomes the pin's allowed (slew, load) window. *)

type window = {
  slew_min : float;
  slew_max : float;
  load_min : float;
  load_max : float;
}

type status =
  | Unrestricted  (** no statistics on the pin (e.g. tie cells) *)
  | Window of window
  | Unusable  (** no LUT entry satisfies the threshold *)

type table
(** Restriction table for a whole library: (cell, output pin) → status. *)

val window_allows : window -> slew:float -> load:float -> bool

val pin_window :
  Vartune_liberty.Pin.t -> threshold:float -> status
(** Stage-two restriction of one output pin. *)

val empty_table : unit -> table

val set : table -> cell:string -> pin:string -> status -> unit

val find : table -> cell:string -> pin:string -> status
(** Defaults to [Unrestricted] for absent entries. *)

val allows : table -> cell:string -> pin:string -> slew:float -> load:float -> bool

val usable_cell : table -> Vartune_liberty.Cell.t -> bool
(** False iff some output pin of the cell is [Unusable]. *)

val restricted_pins : table -> (string * string * status) list
(** All entries, sorted, for reporting. *)

val restriction_fraction : table -> Vartune_liberty.Library.t -> float
(** Fraction of LUT entries removed from use across the library — a
    coarse aggressiveness measure for reports. *)
