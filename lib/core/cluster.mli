(** Cell populations for threshold extraction (Section VI-A).

    The paper considers two ways of grouping cells before extracting a
    sigma threshold: each cell on its own, or all cells of one drive
    strength together (larger transistors have lower mismatch, making
    drive strength a natural clustering parameter). *)

type population = Per_cell | Per_drive_strength

type t = {
  label : string;  (** e.g. ["ND2_4"] or ["drive_6"] *)
  cells : Vartune_liberty.Cell.t list;
}

val clusters : Vartune_liberty.Library.t -> population -> t list
(** Partition of the library's cells.  Cells without sigma-bearing arcs
    (tie cells) are skipped. *)

val sigma_luts : Vartune_liberty.Cell.t -> Vartune_liberty.Lut.t list
(** All worst-case (max of rise/fall) delay-sigma tables of a cell, one
    per arc.  Empty for cells without statistics. *)

val equivalent_lut : t -> Vartune_liberty.Lut.t option
(** The cluster's maximum-equivalent sigma LUT: entry-wise (by index)
    maximum over every sigma table of every member cell.  [None] when no
    member carries statistics. *)

val population_to_string : population -> string
