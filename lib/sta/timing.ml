module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc
module Obs = Vartune_obs.Obs

type config = {
  clock_period : float;
  guard_band : float;
  input_slew : float;
  clock_slew : float;
  output_load : float;
  wire_cap_base : float;
  wire_cap_per_sink : float;
  wire_caps : (Netlist.net_id -> float) option;
}

let default_config ~clock_period =
  {
    clock_period;
    guard_band = 0.3;
    input_slew = 0.05;
    clock_slew = 0.04;
    output_load = 0.004;
    wire_cap_base = 0.0002;
    wire_cap_per_sink = 0.00015;
    wire_caps = None;
  }

type endpoint =
  | Reg_data of { inst : Netlist.inst_id; pin : string }
  | Primary_output of Netlist.net_id

type endpoint_timing = {
  endpoint : endpoint;
  arrival : float;
  required : float;
  slack : float;
}

(* ------------------------------------------------------------------ *)
(* Levelized timing graph                                              *)
(* ------------------------------------------------------------------ *)

(* One evaluation unit per driven output pin, stored in topological
   order (the level schedule).  Arcs and their resolved input nets are
   flattened into arrays once at build time so the propagation loops
   never walk association lists or pin records.  The [mutable] fields
   are the ones a cell swap (Netlist.set_cell) refreshes in place. *)
type eval = {
  e_inst : Netlist.inst_id;
  e_out_pin : string;
  e_out_net : int;
  e_seq : bool;
  mutable e_arcs : Arc.t array;
  mutable e_in_nets : int array;  (* per arc: input net id, -1 = unconnected *)
}

(* Endpoint slots are structural: which (instance, pin, net) triples
   and which primary outputs are checked.  The required values and the
   hold filter are re-read from the value arrays at each analysis. *)
type ep_slot =
  | Sreg of { inst : Netlist.inst_id; pin : string; net : int }
  | Spo of int

type graph = {
  nl : Netlist.t;
  n_nets : int;
  n_insts : int;  (* live instances at build time, for edit detection *)
  evals : eval array;  (* topological (level) order *)
  eval_of_net : int array;  (* net -> driving eval index, -1 if undriven *)
  fanout : int array array;  (* net -> eval indices reading it forward *)
  consumers : (int * int) array array;
      (* net -> (eval, arc) pairs contributing required times *)
  inst_evals : (Netlist.inst_id, int list) Hashtbl.t;
  ep_slots : ep_slot array;
}

(* Structure-of-arrays timing state over the graph: one flat float
   array per quantity, indexed by net, plus the winning-arc index per
   net for path backtracing.  [run] allocates it; [retime] updates it
   in place. *)
type t = {
  cfg : config;
  graph : graph;
  loads : float array;
  arrivals : float array;
  slews : float array;
  requireds : float array;
  min_arrivals : float array;  (* earliest register-launched arrival *)
  crit_idx : int array;  (* net -> winning arc index into driver's e_arcs *)
  crit_delay : float array;  (* net -> winning arc's delay *)
  ep_seed : float array;  (* net -> tightest endpoint required, or inf *)
  (* Arc.eval_into scratch (delay, min_delay, transition, spare).  The
     analysis is single-domain — the pool parallelises across analyses,
     never inside one — so one buffer per graph is race-free and keeps
     the forward sweep allocation-free. *)
  arc_out : float array;
  mutable eps : endpoint_timing list;
  mutable hold_eps : endpoint_timing list;
}

let config t = t.cfg

(* Netlist edits made after an analysis may create nets the arrays don't
   cover; those read as neutral defaults until the next [run]. *)
let in_range t nid = nid >= 0 && nid < Array.length t.loads
let net_load t nid = if in_range t nid then t.loads.(nid) else 0.0
let net_arrival t nid = if in_range t nid then t.arrivals.(nid) else 0.0
let net_slew t nid = if in_range t nid then t.slews.(nid) else t.cfg.input_slew
let net_required t nid = if in_range t nid then t.requireds.(nid) else infinity
let net_slack t nid = net_required t nid -. net_arrival t nid
let net_min_arrival t nid = if in_range t nid then t.min_arrivals.(nid) else infinity
let hold_endpoints t = t.hold_eps

let worst_hold_slack t =
  List.fold_left (fun acc ep -> Float.min acc ep.slack) infinity t.hold_eps

let critical_input t inst ~out_pin =
  match Netlist.instance_opt t.graph.nl inst with
  | None -> None
  | Some i -> (
    match List.assoc_opt out_pin i.Netlist.outputs with
    | None -> None
    | Some nid ->
      if not (in_range t nid) then None
      else begin
        let ai = t.crit_idx.(nid) in
        let k = t.graph.eval_of_net.(nid) in
        if ai < 0 || k < 0 then None
        else begin
          let arc = t.graph.evals.(k).e_arcs.(ai) in
          Some (arc.Arc.related_pin, arc, t.crit_delay.(nid))
        end
      end)

let endpoints t = t.eps

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_graph nl =
  let order = Check.topological_order nl in
  let n_nets = Netlist.net_count nl in
  let inst_evals = Hashtbl.create 256 in
  let evals_rev = ref [] in
  let n_evals = ref 0 in
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      let cell = inst.Netlist.cell in
      let seq = Cell.is_sequential cell in
      List.iter
        (fun (out_pin_name, out_net) ->
          match Cell.find_pin cell out_pin_name with
          | None | Some { Pin.direction = Pin.Input; _ } -> ()
          | Some out_pin ->
            let arcs = Array.of_list out_pin.Pin.arcs in
            let in_nets =
              Array.map
                (fun (arc : Arc.t) ->
                  match List.assoc_opt arc.related_pin inst.inputs with
                  | Some n -> n
                  | None -> -1)
                arcs
            in
            let k = !n_evals in
            incr n_evals;
            evals_rev :=
              { e_inst = inst_id; e_out_pin = out_pin_name; e_out_net = out_net;
                e_seq = seq; e_arcs = arcs; e_in_nets = in_nets }
              :: !evals_rev;
            Hashtbl.replace inst_evals inst_id
              (k :: (try Hashtbl.find inst_evals inst_id with Not_found -> [])))
        inst.outputs)
    order;
  let evals = Array.of_list (List.rev !evals_rev) in
  let eval_of_net = Array.make n_nets (-1) in
  let fanout_rev = Array.make n_nets [] in
  let consumers_rev = Array.make n_nets [] in
  Array.iteri
    (fun k e ->
      eval_of_net.(e.e_out_net) <- k;
      if not e.e_seq then
        Array.iteri
          (fun ai innet ->
            if innet >= 0 then begin
              fanout_rev.(innet) <- k :: fanout_rev.(innet);
              consumers_rev.(innet) <- (k, ai) :: consumers_rev.(innet)
            end)
          e.e_in_nets)
    evals;
  let fanout = Array.map (fun l -> Array.of_list (List.rev l)) fanout_rev in
  let consumers = Array.map (fun l -> Array.of_list (List.rev l)) consumers_rev in
  (* endpoint slots in the order endpoint lists are reported: register
     data pins in instance order, then primary outputs *)
  let slots = ref [] in
  Netlist.iter_instances nl ~f:(fun inst ->
      if Cell.is_sequential inst.Netlist.cell then
        List.iter
          (fun (pin_name, nid) ->
            if Some pin_name <> inst.cell.Cell.clock_pin then
              slots := Sreg { inst = inst.inst_id; pin = pin_name; net = nid } :: !slots)
          inst.inputs);
  List.iter (fun nid -> slots := Spo nid :: !slots) (Netlist.primary_outputs nl);
  {
    nl;
    n_nets;
    n_insts = Netlist.instance_count nl;
    evals;
    eval_of_net;
    fanout;
    consumers;
    inst_evals;
    ep_slots = Array.of_list (List.rev !slots);
  }

(* ------------------------------------------------------------------ *)
(* Per-net load                                                        *)
(* ------------------------------------------------------------------ *)

(* Shared by the full analysis and the incremental load refresh so a
   recomputed load is bit-identical to a fresh one: the sink fold runs
   in the net's sink-list order either way. *)
let compute_net_load cfg nl ~is_po (net : Netlist.net) =
  let nid = net.Netlist.net_id in
  let sink_caps =
    List.fold_left
      (fun acc (r : Netlist.pin_ref) ->
        let inst = Netlist.instance nl r.inst in
        match Cell.find_pin inst.cell r.pin with
        | Some p -> acc +. p.Pin.capacitance
        | None -> acc)
      0.0 net.sinks
  in
  let n_sinks = List.length net.sinks in
  let wire =
    if n_sinks = 0 then 0.0
    else
      match cfg.wire_caps with
      | Some f -> f nid
      | None -> cfg.wire_cap_base +. (cfg.wire_cap_per_sink *. float_of_int n_sinks)
  in
  let external_load = if is_po nid then cfg.output_load else 0.0 in
  sink_caps +. wire +. external_load

let po_table nl =
  let po = Hashtbl.create 16 in
  List.iter (fun nid -> Hashtbl.replace po nid ()) (Netlist.primary_outputs nl);
  fun nid -> Hashtbl.mem po nid

(* ------------------------------------------------------------------ *)
(* Node evaluation (shared by full run and retime)                     *)
(* ------------------------------------------------------------------ *)

let c_sta_runs = Obs.Counter.make "sta.runs"
let c_retimes = Obs.Counter.make "sta.retimes"
let c_node_evals = Obs.Counter.make "sta.node_evals"
let c_required_evals = Obs.Counter.make "sta.required_evals"

(* Forward evaluation of one node: fused arrival/slew (late) and
   min-arrival (hold) propagation over the node's arcs.  Pure in the
   upstream arrays, so re-evaluating with unchanged inputs reproduces
   the stored values bit-for-bit — the invariant [retime] rests on. *)
let eval_forward t k =
  Obs.Counter.incr c_node_evals;
  let e = Array.unsafe_get t.graph.evals k in
  let out = e.e_out_net in
  let arcs = e.e_arcs in
  let n = Array.length arcs in
  if n = 0 then begin
    (* tie cells: constant output, clean edge, no hold constraint *)
    t.arrivals.(out) <- 0.0;
    t.slews.(out) <- t.cfg.input_slew;
    t.min_arrivals.(out) <- infinity;
    t.crit_idx.(out) <- -1
  end
  else begin
    let load = t.loads.(out) in
    let best = ref neg_infinity in
    let best_slew = ref 0.0 in
    let best_idx = ref (-1) in
    let best_delay = ref 0.0 in
    let mina = ref infinity in
    for ai = 0 to n - 1 do
      let arc = Array.unsafe_get arcs ai in
      let innet = Array.unsafe_get e.e_in_nets ai in
      let in_arrival, in_slew, in_min =
        if e.e_seq then (0.0, t.cfg.clock_slew, 0.0)
        else if innet < 0 then (0.0, t.cfg.input_slew, infinity)
        else
          ( Array.unsafe_get t.arrivals innet,
            Array.unsafe_get t.slews innet,
            Array.unsafe_get t.min_arrivals innet )
      in
      (* One fused segment search yields delay, min_delay and
         transition together (the arc's tables share axes); each value
         is bit-identical to the scalar Arc.delay/min_delay/transition
         queries this loop used to make. *)
      Arc.eval_into arc ~slew:in_slew ~load ~out:t.arc_out;
      let delay = Array.unsafe_get t.arc_out 0 in
      let out_slew = Array.unsafe_get t.arc_out 2 in
      if in_arrival +. delay > !best then begin
        best := in_arrival +. delay;
        best_idx := ai;
        best_delay := delay
      end;
      if out_slew > !best_slew then best_slew := out_slew;
      if in_min < infinity then begin
        let d = Array.unsafe_get t.arc_out 1 in
        if in_min +. d < !mina then mina := in_min +. d
      end
    done;
    t.arrivals.(out) <- !best;
    t.slews.(out) <- !best_slew;
    t.min_arrivals.(out) <- !mina;
    t.crit_idx.(out) <- !best_idx;
    t.crit_delay.(out) <- !best_delay
  end

(* Required time of one net, recomputed from scratch: the tightest
   endpoint seed on the net, tightened by every consuming arc.  Also
   pure in (ep_seed, slews, loads, downstream requireds). *)
let required_of_net t nid =
  Obs.Counter.incr c_required_evals;
  let cons = t.graph.consumers.(nid) in
  let r = ref t.ep_seed.(nid) in
  let slew = t.slews.(nid) in
  for c = 0 to Array.length cons - 1 do
    let k, ai = Array.unsafe_get cons c in
    let e = Array.unsafe_get t.graph.evals k in
    let arc = Array.unsafe_get e.e_arcs ai in
    let delay = Arc.delay arc ~slew ~load:t.loads.(e.e_out_net) in
    r := Float.min !r (t.requireds.(e.e_out_net) -. delay)
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Endpoint lists                                                      *)
(* ------------------------------------------------------------------ *)

let data_required cfg (cell : Cell.t) =
  cfg.clock_period -. cfg.guard_band -. cell.Cell.setup_time

let po_required cfg = cfg.clock_period -. cfg.guard_band

let rebuild_ep_seed t =
  let g = t.graph in
  let seed = t.ep_seed in
  Array.fill seed 0 (Array.length seed) infinity;
  Array.iter
    (function
      | Sreg { inst; net; _ } ->
        let cell = (Netlist.instance g.nl inst).Netlist.cell in
        seed.(net) <- Float.min seed.(net) (data_required t.cfg cell)
      | Spo net -> seed.(net) <- Float.min seed.(net) (po_required t.cfg))
    g.ep_slots

let rebuild_endpoint_lists t =
  let g = t.graph in
  let eps = ref [] and hold = ref [] in
  Array.iter
    (function
      | Sreg { inst; pin; net } ->
        let cell = (Netlist.instance g.nl inst).Netlist.cell in
        let arrival = t.arrivals.(net) in
        let required = data_required t.cfg cell in
        eps :=
          { endpoint = Reg_data { inst; pin }; arrival; required;
            slack = required -. arrival }
          :: !eps;
        if t.min_arrivals.(net) < infinity then begin
          let arrival = t.min_arrivals.(net) in
          let required = cell.Cell.hold_time in
          hold :=
            { endpoint = Reg_data { inst; pin }; arrival; required;
              slack = arrival -. required }
            :: !hold
        end
      | Spo net ->
        let arrival = t.arrivals.(net) in
        let required = po_required t.cfg in
        eps :=
          { endpoint = Primary_output net; arrival; required;
            slack = required -. arrival }
          :: !eps)
    g.ep_slots;
  t.eps <- List.rev !eps;
  t.hold_eps <- List.rev !hold

(* ------------------------------------------------------------------ *)
(* Full analysis                                                       *)
(* ------------------------------------------------------------------ *)

let analyse_full t =
  let g = t.graph in
  let is_po = po_table g.nl in
  Netlist.iter_nets g.nl ~f:(fun net ->
      t.loads.(net.Netlist.net_id) <- compute_net_load t.cfg g.nl ~is_po net);
  Array.fill t.arrivals 0 g.n_nets 0.0;
  Array.fill t.slews 0 g.n_nets t.cfg.input_slew;
  Array.fill t.min_arrivals 0 g.n_nets infinity;
  Array.fill t.crit_idx 0 g.n_nets (-1);
  let nevals = Array.length g.evals in
  (* one span over the whole sweep, not per lookup: eval_forward runs
     millions of times and a span each would swamp the trace.  The GC
     delta attributed here is the LUT-interpolation allocation cost. *)
  Obs.span "sta.forward"
    ~attrs:(fun () -> [ ("evals", string_of_int nevals) ])
    (fun () ->
      for k = 0 to nevals - 1 do
        eval_forward t k
      done);
  rebuild_ep_seed t;
  (* backward: in reverse level order a net's consumers have all been
     processed before its driver, so one sweep settles every driven
     net; driverless nets (primary inputs) follow, depending only on
     already-settled downstream requireds *)
  for k = nevals - 1 downto 0 do
    let out = g.evals.(k).e_out_net in
    t.requireds.(out) <- required_of_net t out
  done;
  for nid = 0 to g.n_nets - 1 do
    if g.eval_of_net.(nid) < 0 then t.requireds.(nid) <- required_of_net t nid
  done;
  rebuild_endpoint_lists t

let run cfg nl =
  Obs.span "sta.run"
    ~attrs:(fun () -> [ ("nets", string_of_int (Netlist.net_count nl)) ])
  @@ fun () ->
  Obs.Counter.incr c_sta_runs;
  let graph = build_graph nl in
  let n = graph.n_nets in
  let t =
    {
      cfg;
      graph;
      loads = Array.make n 0.0;
      arrivals = Array.make n 0.0;
      slews = Array.make n cfg.input_slew;
      requireds = Array.make n infinity;
      min_arrivals = Array.make n infinity;
      crit_idx = Array.make n (-1);
      crit_delay = Array.make n 0.0;
      ep_seed = Array.make n infinity;
      arc_out = Array.make 4 0.0;
      eps = [];
      hold_eps = [];
    }
  in
  analyse_full t;
  t

(* ------------------------------------------------------------------ *)
(* Incremental re-timing                                               *)
(* ------------------------------------------------------------------ *)

(* A changed instance is refreshable in place when its footprint still
   matches the graph: same pins, same sequential kind, and arcs whose
   related-pin sequence lines up with the consumer edges built from the
   old cell.  Family ladders satisfy this; anything else falls back to
   a full rebuild. *)
let refreshable g inst_id =
  match Netlist.instance_opt g.nl inst_id with
  | None -> false
  | Some inst ->
    let cell = inst.Netlist.cell in
    List.for_all
      (fun k ->
        let e = g.evals.(k) in
        e.e_seq = Cell.is_sequential cell
        &&
        match Cell.find_pin cell e.e_out_pin with
        | None | Some { Pin.direction = Pin.Input; _ } -> false
        | Some out_pin ->
          let arcs = out_pin.Pin.arcs in
          List.length arcs = Array.length e.e_arcs
          && List.for_all2
               (fun (a : Arc.t) (b : Arc.t) -> a.related_pin = b.related_pin)
               arcs
               (Array.to_list e.e_arcs))
      (try Hashtbl.find g.inst_evals inst_id with Not_found -> [])

let bits = Int64.bits_of_float

let retime t ~changed =
  let g = t.graph in
  let nl = g.nl in
  if
    Netlist.net_count nl <> g.n_nets
    || Netlist.instance_count nl <> g.n_insts
    || not (List.for_all (refreshable g) changed)
  then run t.cfg nl (* structural edits: rebuild the graph from scratch *)
  else begin
    Obs.span "sta.retime"
      ~attrs:(fun () -> [ ("changed", string_of_int (List.length changed)) ])
    @@ fun () ->
    Obs.Counter.incr c_retimes;
    let nevals = Array.length g.evals in
    let fwd_dirty = Array.make nevals false in
    let breq = Array.make g.n_nets false in
    let is_po = po_table nl in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun inst_id ->
        if not (Hashtbl.mem seen inst_id) then begin
          Hashtbl.replace seen inst_id ();
          let inst = Netlist.instance nl inst_id in
          let cell = inst.Netlist.cell in
          (* refresh the instance's evaluation units from the new cell *)
          List.iter
            (fun k ->
              let e = g.evals.(k) in
              (match Cell.find_pin cell e.e_out_pin with
              | Some out_pin when out_pin.Pin.direction <> Pin.Input ->
                e.e_arcs <- Array.of_list out_pin.Pin.arcs;
                e.e_in_nets <-
                  Array.map
                    (fun (arc : Arc.t) ->
                      match List.assoc_opt arc.Arc.related_pin inst.inputs with
                      | Some n -> n
                      | None -> -1)
                    e.e_arcs
              | _ -> assert false (* excluded by [refreshable] *));
              fwd_dirty.(k) <- true;
              (* new arcs change this node's required contributions *)
              Array.iter (fun innet -> if innet >= 0 then breq.(innet) <- true) e.e_in_nets)
            (try Hashtbl.find g.inst_evals inst_id with Not_found -> []);
          (* the new cell's input pin capacitances change the loads of
             the nets feeding this instance *)
          List.iter
            (fun (_, nid) ->
              let old = t.loads.(nid) in
              let fresh = compute_net_load t.cfg nl ~is_po (Netlist.net nl nid) in
              if bits fresh <> bits old then begin
                t.loads.(nid) <- fresh;
                (match g.eval_of_net.(nid) with
                | -1 -> ()
                | k ->
                  fwd_dirty.(k) <- true;
                  (* a load change shifts the driver's arc delays, and
                     with them its required contributions upstream *)
                  if not g.evals.(k).e_seq then
                    Array.iter
                      (fun innet -> if innet >= 0 then breq.(innet) <- true)
                      g.evals.(k).e_in_nets)
              end)
            inst.inputs
        end)
      changed;
    (* forward cone: sweep the level schedule, re-evaluating dirty
       nodes and marking their fanout only when an output actually
       changed (bitwise), so the cone stays as narrow as the values
       allow *)
    for k = 0 to nevals - 1 do
      if fwd_dirty.(k) then begin
        let out = g.evals.(k).e_out_net in
        let oa = t.arrivals.(out) and os = t.slews.(out) and om = t.min_arrivals.(out) in
        eval_forward t k;
        let slew_changed = bits os <> bits t.slews.(out) in
        if slew_changed then breq.(out) <- true;
        if
          slew_changed
          || bits oa <> bits t.arrivals.(out)
          || bits om <> bits t.min_arrivals.(out)
        then Array.iter (fun k' -> fwd_dirty.(k') <- true) g.fanout.(out)
      end
    done;
    (* required-time fan-in: endpoint seeds that moved (a sequential
       cell swap changes its setup time) start the backward cone *)
    let old_seed = Array.copy t.ep_seed in
    rebuild_ep_seed t;
    for nid = 0 to g.n_nets - 1 do
      if bits old_seed.(nid) <> bits t.ep_seed.(nid) then breq.(nid) <- true
    done;
    for k = nevals - 1 downto 0 do
      let e = g.evals.(k) in
      let out = e.e_out_net in
      if breq.(out) then begin
        let old = t.requireds.(out) in
        let fresh = required_of_net t out in
        t.requireds.(out) <- fresh;
        if bits old <> bits fresh && not e.e_seq then
          Array.iter (fun innet -> if innet >= 0 then breq.(innet) <- true) e.e_in_nets
      end
    done;
    for nid = 0 to g.n_nets - 1 do
      if breq.(nid) && g.eval_of_net.(nid) < 0 then
        t.requireds.(nid) <- required_of_net t nid
    done;
    rebuild_endpoint_lists t;
    t
  end

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let worst_slack t =
  List.fold_left (fun acc ep -> Float.min acc ep.slack) infinity t.eps

let worst_endpoint t =
  match t.eps with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc ep -> if ep.slack < acc.slack then ep else acc) first rest)

let total_negative_slack t =
  List.fold_left (fun acc ep -> if ep.slack < 0.0 then acc +. ep.slack else acc) 0.0 t.eps

let endpoint_name nl = function
  | Reg_data { inst; pin } ->
    Printf.sprintf "%s/%s" (Netlist.instance nl inst).inst_name pin
  | Primary_output nid -> (Netlist.net nl nid).net_name
