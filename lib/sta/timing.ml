module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc

type config = {
  clock_period : float;
  guard_band : float;
  input_slew : float;
  clock_slew : float;
  output_load : float;
  wire_cap_base : float;
  wire_cap_per_sink : float;
  wire_caps : (Netlist.net_id -> float) option;
}

let default_config ~clock_period =
  {
    clock_period;
    guard_band = 0.3;
    input_slew = 0.05;
    clock_slew = 0.04;
    output_load = 0.004;
    wire_cap_base = 0.0002;
    wire_cap_per_sink = 0.00015;
    wire_caps = None;
  }

type endpoint =
  | Reg_data of { inst : Netlist.inst_id; pin : string }
  | Primary_output of Netlist.net_id

type endpoint_timing = {
  endpoint : endpoint;
  arrival : float;
  required : float;
  slack : float;
}

type t = {
  cfg : config;
  loads : float array;  (* per net *)
  arrivals : float array;
  slews : float array;
  requireds : float array;
  min_arrivals : float array;  (* earliest register-launched arrival *)
  crit : (Netlist.inst_id * string, string * Arc.t * float) Hashtbl.t;
  eps : endpoint_timing list;
  hold_eps : endpoint_timing list;
}

let config t = t.cfg

(* Netlist edits made after an analysis may create nets the arrays don't
   cover; those read as neutral defaults until the next [run]. *)
let in_range t nid = nid >= 0 && nid < Array.length t.loads
let net_load t nid = if in_range t nid then t.loads.(nid) else 0.0
let net_arrival t nid = if in_range t nid then t.arrivals.(nid) else 0.0
let net_slew t nid = if in_range t nid then t.slews.(nid) else t.cfg.input_slew
let net_required t nid = if in_range t nid then t.requireds.(nid) else infinity
let net_slack t nid = net_required t nid -. net_arrival t nid
let net_min_arrival t nid = if in_range t nid then t.min_arrivals.(nid) else infinity
let hold_endpoints t = t.hold_eps

let worst_hold_slack t =
  List.fold_left (fun acc ep -> Float.min acc ep.slack) infinity t.hold_eps
let critical_input t inst ~out_pin = Hashtbl.find_opt t.crit (inst, out_pin)
let endpoints t = t.eps

let compute_loads cfg nl =
  let loads = Array.make (Netlist.net_count nl) 0.0 in
  let po = Hashtbl.create 16 in
  List.iter (fun nid -> Hashtbl.replace po nid ()) (Netlist.primary_outputs nl);
  Netlist.iter_nets nl ~f:(fun net ->
      let nid = net.Netlist.net_id in
      let sink_caps =
        List.fold_left
          (fun acc (r : Netlist.pin_ref) ->
            let inst = Netlist.instance nl r.inst in
            match Cell.find_pin inst.cell r.pin with
            | Some p -> acc +. p.Pin.capacitance
            | None -> acc)
          0.0 net.sinks
      in
      let n_sinks = List.length net.sinks in
      let wire =
        if n_sinks = 0 then 0.0
        else
          match cfg.wire_caps with
          | Some f -> f nid
          | None -> cfg.wire_cap_base +. (cfg.wire_cap_per_sink *. float_of_int n_sinks)
      in
      let external_load = if Hashtbl.mem po nid then cfg.output_load else 0.0 in
      loads.(nid) <- sink_caps +. wire +. external_load);
  loads

let c_sta_runs = Vartune_obs.Obs.Counter.make "sta.runs"

let run cfg nl =
  Vartune_obs.Obs.span "sta.run"
    ~attrs:(fun () -> [ ("nets", string_of_int (Netlist.net_count nl)) ])
  @@ fun () ->
  Vartune_obs.Obs.Counter.incr c_sta_runs;
  let n_nets = Netlist.net_count nl in
  let loads = compute_loads cfg nl in
  let arrivals = Array.make n_nets 0.0 in
  let slews = Array.make n_nets cfg.input_slew in
  List.iter (fun nid -> slews.(nid) <- cfg.input_slew) (Netlist.primary_inputs nl);
  let crit = Hashtbl.create 1024 in
  let order = Check.topological_order nl in
  let process_output inst (out_pin_name, out_net) =
    let inst_id = inst.Netlist.inst_id in
    let cell = inst.Netlist.cell in
    let load = loads.(out_net) in
    match Cell.find_pin cell out_pin_name with
    | None | Some { Pin.direction = Pin.Input; _ } -> ()
    | Some out_pin ->
      if out_pin.Pin.arcs = [] then begin
        (* tie cells: constant output, clean edge *)
        arrivals.(out_net) <- 0.0;
        slews.(out_net) <- cfg.input_slew
      end
      else begin
        let best = ref neg_infinity in
        let best_slew = ref 0.0 in
        List.iter
          (fun (arc : Arc.t) ->
            let in_arrival, in_slew =
              if Cell.is_sequential cell then (0.0, cfg.clock_slew)
              else
                match List.assoc_opt arc.related_pin inst.inputs with
                | Some in_net -> (arrivals.(in_net), slews.(in_net))
                | None -> (0.0, cfg.input_slew)
            in
            let delay = Arc.delay arc ~slew:in_slew ~load in
            let out_slew = Arc.transition arc ~slew:in_slew ~load in
            if in_arrival +. delay > !best then begin
              best := in_arrival +. delay;
              Hashtbl.replace crit (inst_id, out_pin_name) (arc.related_pin, arc, delay)
            end;
            if out_slew > !best_slew then best_slew := out_slew)
          out_pin.Pin.arcs;
        arrivals.(out_net) <- !best;
        slews.(out_net) <- !best_slew
      end
  in
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      List.iter (process_output inst) inst.outputs)
    order;
  (* endpoints: sequential data pins and primary outputs *)
  let eps = ref [] in
  let data_required cell =
    cfg.clock_period -. cfg.guard_band -. cell.Cell.setup_time
  in
  Netlist.iter_instances nl ~f:(fun inst ->
      if Cell.is_sequential inst.Netlist.cell then
        List.iter
          (fun (pin_name, nid) ->
            if Some pin_name <> inst.cell.Cell.clock_pin then begin
              let arrival = arrivals.(nid) in
              let required = data_required inst.cell in
              eps :=
                { endpoint = Reg_data { inst = inst.inst_id; pin = pin_name };
                  arrival; required; slack = required -. arrival }
                :: !eps
            end)
          inst.inputs);
  List.iter
    (fun nid ->
      let arrival = arrivals.(nid) in
      let required = cfg.clock_period -. cfg.guard_band in
      eps :=
        { endpoint = Primary_output nid; arrival; required; slack = required -. arrival }
        :: !eps)
    (Netlist.primary_outputs nl);
  (* min-delay (hold) pass: earliest register-launched arrivals.  Nets
     reached only from primary inputs stay at infinity — without input
     delays they are unconstrained for hold. *)
  let min_arrivals = Array.make n_nets infinity in
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      let cell = inst.Netlist.cell in
      List.iter
        (fun (out_pin_name, out_net) ->
          match Cell.find_pin cell out_pin_name with
          | None | Some { Pin.direction = Pin.Input; _ } -> ()
          | Some out_pin ->
            let load = loads.(out_net) in
            List.iter
              (fun (arc : Arc.t) ->
                let in_arrival, in_slew =
                  if Cell.is_sequential cell then (0.0, cfg.clock_slew)
                  else
                    match List.assoc_opt arc.related_pin inst.inputs with
                    | Some in_net -> (min_arrivals.(in_net), slews.(in_net))
                    | None -> (infinity, cfg.input_slew)
                in
                if in_arrival < infinity then begin
                  let d = Arc.min_delay arc ~slew:in_slew ~load in
                  if in_arrival +. d < min_arrivals.(out_net) then
                    min_arrivals.(out_net) <- in_arrival +. d
                end)
              out_pin.Pin.arcs)
        inst.outputs)
    order;
  let hold_eps = ref [] in
  Netlist.iter_instances nl ~f:(fun inst ->
      if Cell.is_sequential inst.Netlist.cell then
        List.iter
          (fun (pin_name, nid) ->
            if Some pin_name <> inst.cell.Cell.clock_pin && min_arrivals.(nid) < infinity
            then begin
              let arrival = min_arrivals.(nid) in
              let required = inst.cell.Cell.hold_time in
              hold_eps :=
                { endpoint = Reg_data { inst = inst.inst_id; pin = pin_name };
                  arrival; required; slack = arrival -. required }
                :: !hold_eps
            end)
          inst.inputs);
  (* backward pass: required times tighten from endpoints toward sources *)
  let requireds = Array.make n_nets infinity in
  List.iter
    (fun ep ->
      let nid =
        match ep.endpoint with
        | Reg_data { inst; pin } -> List.assoc pin (Netlist.instance nl inst).inputs
        | Primary_output nid -> nid
      in
      requireds.(nid) <- Float.min requireds.(nid) ep.required)
    !eps;
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      if not (Cell.is_sequential inst.Netlist.cell) then
        List.iter
          (fun (out_pin_name, out_net) ->
            match Cell.find_pin inst.cell out_pin_name with
            | None | Some { Pin.direction = Pin.Input; _ } -> ()
            | Some out_pin ->
              let load = loads.(out_net) in
              List.iter
                (fun (arc : Arc.t) ->
                  match List.assoc_opt arc.related_pin inst.inputs with
                  | None -> ()
                  | Some in_net ->
                    let delay = Arc.delay arc ~slew:slews.(in_net) ~load in
                    requireds.(in_net) <-
                      Float.min requireds.(in_net) (requireds.(out_net) -. delay))
                out_pin.Pin.arcs)
          inst.outputs)
    (Array.of_list (List.rev (Array.to_list order)));
  { cfg; loads; arrivals; slews; requireds; min_arrivals; crit;
    eps = List.rev !eps; hold_eps = List.rev !hold_eps }

let worst_slack t =
  List.fold_left (fun acc ep -> Float.min acc ep.slack) infinity t.eps

let worst_endpoint t =
  match t.eps with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc ep -> if ep.slack < acc.slack then ep else acc) first rest)

let total_negative_slack t =
  List.fold_left (fun acc ep -> if ep.slack < 0.0 then acc +. ep.slack else acc) 0.0 t.eps

let endpoint_name nl = function
  | Reg_data { inst; pin } ->
    Printf.sprintf "%s/%s" (Netlist.instance nl inst).inst_name pin
  | Primary_output nid -> (Netlist.net nl nid).net_name
