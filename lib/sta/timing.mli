(** Static timing analysis over a mapped netlist.

    Propagates arrival times and slews topologically, computing per-net
    load from sink pin capacitances plus a simple fanout-based wire model.
    Delays and output transitions come from the library LUTs via bilinear
    interpolation; when several arcs reach an output the worst arrival and
    slew win, and the winning arc is recorded for path backtracing.

    Internally the analysis runs over a levelized timing graph built once
    per netlist: one evaluation unit per driven output pin in topological
    order, with arcs and resolved input nets flattened into arrays and
    every per-net quantity held in a flat float array.  {!run} builds the
    graph and performs a full analysis; {!retime} re-propagates only the
    cone affected by a set of cell swaps, bit-identically to a fresh
    {!run}. *)

type config = {
  clock_period : float;  (** ns *)
  guard_band : float;  (** clock uncertainty subtracted from the period *)
  input_slew : float;  (** slew at primary inputs *)
  clock_slew : float;  (** slew of the clock edge at sequential cells *)
  output_load : float;  (** external load on primary outputs, pF *)
  wire_cap_base : float;  (** per-net wire capacitance, pF *)
  wire_cap_per_sink : float;  (** additional wire capacitance per sink, pF *)
  wire_caps : (Vartune_netlist.Netlist.net_id -> float) option;
  (** when set (post-placement), overrides the fanout-based wire model
      with actual per-net wire capacitance *)
}

val default_config : clock_period:float -> config
(** The paper's setup: 300 ps guard band, 50 ps input slew. *)

type endpoint =
  | Reg_data of { inst : Vartune_netlist.Netlist.inst_id; pin : string }
      (** a sequential cell's data input *)
  | Primary_output of Vartune_netlist.Netlist.net_id

type endpoint_timing = {
  endpoint : endpoint;
  arrival : float;
  required : float;
  slack : float;
}

type t

val run : config -> Vartune_netlist.Netlist.t -> t
(** Full timing analysis.  Raises {!Vartune_netlist.Check.Combinational_loop}
    on cyclic logic. *)

val retime : t -> changed:Vartune_netlist.Netlist.inst_id list -> t
(** [retime t ~changed] updates the analysis after the listed instances
    had their cell swapped ({!Vartune_netlist.Netlist.set_cell}), and
    returns the refreshed analysis.  Only the affected cone is
    re-propagated: forward from the changed instances and the nets whose
    load their input pins shifted, backward from every net whose slew,
    consumer arcs or endpoint requirement moved.  The result — every
    per-net value, winning arc, and both endpoint lists — is bit-for-bit
    identical to [run (config t) nl].

    [changed] must name every instance edited since the previous
    analysis.  Cell swaps that keep the pin interface (same output pins,
    same arc related-pin sequences, same sequential kind — family ladder
    moves) are applied in place, mutating and returning [t]; any other
    edit, including structural netlist changes (detected best-effort via
    net/instance counts and arc-shape checks), falls back to a full
    [run] on the current netlist and returns the fresh analysis.  Either
    way the caller must use the returned value. *)

val config : t -> config
val net_load : t -> Vartune_netlist.Netlist.net_id -> float
val net_arrival : t -> Vartune_netlist.Netlist.net_id -> float
val net_slew : t -> Vartune_netlist.Netlist.net_id -> float

val net_required : t -> Vartune_netlist.Netlist.net_id -> float
(** Latest time the net may settle while meeting every downstream
    endpoint; [infinity] for nets reaching no endpoint. *)

val net_slack : t -> Vartune_netlist.Netlist.net_id -> float
(** [net_required - net_arrival]. *)

val critical_input :
  t ->
  Vartune_netlist.Netlist.inst_id ->
  out_pin:string ->
  (string * Vartune_liberty.Arc.t * float) option
(** The (input pin, arc, delay) that set the output's arrival, if the
    instance has timing arcs. *)

val endpoints : t -> endpoint_timing list
val worst_slack : t -> float
(** [infinity] when the design has no endpoints. *)

val net_min_arrival : t -> Vartune_netlist.Netlist.net_id -> float
(** Earliest register-launched arrival (min of rise/fall delays along the
    fastest path); [infinity] for nets reached only from primary inputs,
    which are unconstrained for hold without input delays. *)

val hold_endpoints : t -> endpoint_timing list
(** Hold checks at sequential data pins: [arrival] is the earliest
    register-launched arrival, [required] the cell's hold time, [slack]
    their difference.  Pins with no register-launched fanin are omitted. *)

val worst_hold_slack : t -> float
(** [infinity] when no hold check applies. *)

val worst_endpoint : t -> endpoint_timing option
val total_negative_slack : t -> float
(** Sum of negative endpoint slacks (a non-positive number). *)

val endpoint_name : Vartune_netlist.Netlist.t -> endpoint -> string
