(** Average power estimation over a mapped netlist.

    Uses the activity-factor model standard in EDA power reports:

    - {b switching}: [alpha · C_net · Vdd² · f] per net;
    - {b internal}: [alpha · E_int(slew, load) · f] per cell, from the
      library's internal-power LUTs;
    - {b leakage}: the cells' static leakage, activity-independent.

    Clock nets toggle every cycle (activity 1); data nets default to the
    given activity factor. *)

type report = {
  switching_mw : float;
  internal_mw : float;
  leakage_mw : float;
  total_mw : float;
  clock_period : float;
  activity : float;
}

val estimate :
  ?activity:float ->
  ?supply:float ->
  Timing.t ->
  Vartune_netlist.Netlist.t ->
  report
(** [estimate timing nl] evaluates power at the timing run's clock
    period.  [activity] is the average data toggle rate per cycle
    (default 0.15); [supply] defaults to 1.1 V. *)

val pp : Format.formatter -> report -> unit
