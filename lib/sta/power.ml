module Netlist = Vartune_netlist.Netlist
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc

type report = {
  switching_mw : float;
  internal_mw : float;
  leakage_mw : float;
  total_mw : float;
  clock_period : float;
  activity : float;
}

let estimate ?(activity = 0.15) ?(supply = 1.1) timing nl =
  let period = (Timing.config timing).Timing.clock_period in
  let frequency_ghz = 1.0 /. period in
  let clock = Netlist.clock nl in
  (* switching: alpha * C * V^2 * f.  C in pF, V in volts, f in GHz gives
     mW directly. *)
  let switching = ref 0.0 in
  Netlist.iter_nets nl ~f:(fun net ->
      let nid = net.Netlist.net_id in
      let alpha = if Some nid = clock then 1.0 else activity in
      if net.Netlist.sinks <> [] then
        switching :=
          !switching +. (alpha *. Timing.net_load timing nid *. supply *. supply *. frequency_ghz));
  (* internal: alpha * E(slew, load) * f.  E in fJ and f in GHz gives uW;
     convert to mW. *)
  let internal = ref 0.0 in
  let leakage = ref 0.0 in
  Netlist.iter_instances nl ~f:(fun inst ->
      leakage := !leakage +. (inst.Netlist.cell.Cell.leakage *. 1e-6);
      List.iter
        (fun (pin_name, out_net) ->
          match Cell.find_pin inst.Netlist.cell pin_name with
          | None | Some { Pin.direction = Pin.Input; _ } -> ()
          | Some out_pin ->
            let load = Timing.net_load timing out_net in
            List.iter
              (fun (arc : Arc.t) ->
                let slew =
                  match List.assoc_opt arc.Arc.related_pin inst.Netlist.inputs with
                  | Some in_net -> Timing.net_slew timing in_net
                  | None -> (Timing.config timing).Timing.input_slew
                in
                (* energy is charged to the triggering arc; average over
                   the arcs so multi-input cells are not over-counted *)
                let share = 1.0 /. float_of_int (max 1 (List.length out_pin.Pin.arcs)) in
                internal :=
                  !internal
                  +. (activity *. share *. Arc.energy arc ~slew ~load *. frequency_ghz *. 1e-3))
              out_pin.Pin.arcs)
        inst.Netlist.outputs);
  let switching_mw = !switching and internal_mw = !internal and leakage_mw = !leakage in
  {
    switching_mw;
    internal_mw;
    leakage_mw;
    total_mw = switching_mw +. internal_mw +. leakage_mw;
    clock_period = period;
    activity;
  }

let pp ppf r =
  Format.fprintf ppf
    "power @ %.2f ns clock, activity %.2f: switching %.3f mW + internal %.3f mW + leakage %.3f mW = %.3f mW"
    r.clock_period r.activity r.switching_mw r.internal_mw r.leakage_mw r.total_mw
