module Netlist = Vartune_netlist.Netlist
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc

type step = {
  inst : Netlist.inst_id;
  cell : Cell.t;
  out_pin : string;
  arc : Arc.t;
  input_slew : float;
  load : float;
  delay : float;
}

type t = {
  endpoint : Timing.endpoint;
  steps : step list;
  arrival : float;
  required : float;
  slack : float;
}

let extract timing nl (ep : Timing.endpoint_timing) =
  let start_net =
    match ep.endpoint with
    | Timing.Reg_data { inst; pin } -> List.assoc pin (Netlist.instance nl inst).inputs
    | Timing.Primary_output nid -> nid
  in
  (* Walk drivers backwards, collecting steps in capture-to-launch order. *)
  let rec walk nid acc =
    match (Netlist.net nl nid).driver with
    | None -> acc
    | Some { inst = inst_id; pin = out_pin } -> begin
      let inst = Netlist.instance nl inst_id in
      match Timing.critical_input timing inst_id ~out_pin with
      | None -> acc (* tie cell or arc-less driver: path starts here *)
      | Some (in_pin, arc, delay) ->
        let sequential = Cell.is_sequential inst.cell in
        let input_slew =
          if sequential then (Timing.config timing).Timing.clock_slew
          else
            match List.assoc_opt in_pin inst.inputs with
            | Some in_net -> Timing.net_slew timing in_net
            | None -> (Timing.config timing).Timing.input_slew
        in
        let load = Timing.net_load timing nid in
        let step = { inst = inst_id; cell = inst.cell; out_pin; arc; input_slew; load; delay } in
        if sequential then step :: acc
        else
          match List.assoc_opt in_pin inst.inputs with
          | Some in_net -> walk in_net (step :: acc)
          | None -> step :: acc
    end
  in
  {
    endpoint = ep.endpoint;
    steps = walk start_net [];
    arrival = ep.arrival;
    required = ep.required;
    slack = ep.slack;
  }

let worst_per_endpoint timing nl =
  List.map (extract timing nl) (Timing.endpoints timing)

let depth t = List.length t.steps
let mean_delay t = List.fold_left (fun acc s -> acc +. s.delay) 0.0 t.steps

let depth_histogram paths =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let d = depth p in
      Hashtbl.replace counts d (1 + Option.value (Hashtbl.find_opt counts d) ~default:0))
    paths;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
