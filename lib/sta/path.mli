(** Critical-path extraction.

    The paper's design-level metrics are computed over the worst path to
    each unique endpoint (Figs. 12–14); a path is the ordered list of
    cells traversed from a launch point (register output or primary
    input) to the endpoint, with the operating point (input slew, output
    load) each cell saw. *)

type step = {
  inst : Vartune_netlist.Netlist.inst_id;
  cell : Vartune_liberty.Cell.t;
  out_pin : string;
  arc : Vartune_liberty.Arc.t;
  input_slew : float;
  load : float;
  delay : float;
}

type t = {
  endpoint : Timing.endpoint;
  steps : step list;  (** launch to capture order *)
  arrival : float;
  required : float;
  slack : float;
}

val extract : Timing.t -> Vartune_netlist.Netlist.t -> Timing.endpoint_timing -> t
(** Backtraces the critical path into the given endpoint. *)

val worst_per_endpoint : Timing.t -> Vartune_netlist.Netlist.t -> t list
(** One critical path per endpoint, every endpoint of the design. *)

val depth : t -> int
(** Number of cells on the path. *)

val mean_delay : t -> float
(** Sum of step delays (paper eq. 5). *)

val depth_histogram : t list -> (int * int) list
(** [(depth, path count)] pairs, sorted by depth. *)
