(** Human-readable timing reports (PrimeTime-flavoured).

    Renders the K worst setup paths with the per-cell delay breakdown the
    paper's Fig 14 reasons about, plus a summary line with worst slack,
    total negative slack and the hold check. *)

val path_report : Path.t -> string
(** One path as an indented table: per-cell increment, cumulative
    arrival, input slew and output load, then the arrival/required/slack
    footer. *)

val report : ?max_paths:int -> Timing.t -> Vartune_netlist.Netlist.t -> string
(** The [max_paths] (default 5) worst endpoint paths plus the summary. *)

val summary : Timing.t -> string
(** One line: endpoints, worst setup slack, TNS, worst hold slack. *)
