module Netlist = Vartune_netlist.Netlist
module Cell = Vartune_liberty.Cell

let path_report (p : Path.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  %-12s %-4s %8s %9s %8s %9s\n" "cell" "pin" "incr" "arrival" "slew" "load(pF)";
  let arrival = ref 0.0 in
  List.iter
    (fun (s : Path.step) ->
      arrival := !arrival +. s.Path.delay;
      add "  %-12s %-4s %8.4f %9.4f %8.4f %9.5f\n" s.Path.cell.Cell.name s.Path.out_pin
        s.Path.delay !arrival s.Path.input_slew s.Path.load)
    p.Path.steps;
  add "  data arrival %.4f  required %.4f  slack %+.4f (%s)\n" p.Path.arrival
    p.Path.required p.Path.slack
    (if p.Path.slack >= 0.0 then "MET" else "VIOLATED");
  Buffer.contents buf

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let summary timing =
  Printf.sprintf
    "endpoints: %d | worst setup slack: %+.4f ns | TNS: %.4f ns | worst hold slack: %s"
    (List.length (Timing.endpoints timing))
    (Timing.worst_slack timing)
    (Timing.total_negative_slack timing)
    (let h = Timing.worst_hold_slack timing in
     if h = infinity then "n/a" else Printf.sprintf "%+.4f ns" h)

let report ?(max_paths = 5) timing nl =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s\n\n" (summary timing);
  let worst =
    Timing.endpoints timing
    |> List.sort (fun (a : Timing.endpoint_timing) b -> Float.compare a.Timing.slack b.Timing.slack)
    |> take max_paths
  in
  List.iteri
    (fun i ep ->
      let p = Path.extract timing nl ep in
      add "Path %d: endpoint %s, depth %d\n" (i + 1)
        (Timing.endpoint_name nl ep.Timing.endpoint)
        (Path.depth p);
      Buffer.add_string buf (path_report p);
      Buffer.add_char buf '\n')
    worst;
  Buffer.contents buf
