module Path = Vartune_sta.Path
module Timing = Vartune_sta.Timing
module Obs = Vartune_obs.Obs

type t = { dist : Dist.t; paths : int; worst_path_3sigma : float }

let c_paths = Obs.Counter.make "sta.paths_convolved"

let of_dists dists = Dist.sum_independent dists

let of_paths paths =
  Obs.span "sta.design_sigma"
    ~attrs:(fun () -> [ ("paths", string_of_int (List.length paths)) ])
  @@ fun () ->
  Obs.Counter.add c_paths (List.length paths);
  let dists = List.map Convolve.of_path paths in
  let worst =
    List.fold_left (fun acc d -> Float.max acc (Dist.quantile_3sigma d)) neg_infinity dists
  in
  { dist = of_dists dists; paths = List.length paths; worst_path_3sigma = worst }

let measure timing nl = of_paths (Path.worst_per_endpoint timing nl)
