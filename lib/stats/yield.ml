let path_yield dist ~period = Dist.cdf dist period

let parametric_yield dists ~period =
  let log_yield =
    List.fold_left
      (fun acc d ->
        let p = Dist.cdf d period in
        if p <= 0.0 then neg_infinity else acc +. log p)
      0.0 dists
  in
  if log_yield = neg_infinity then 0.0 else exp log_yield

let yield_curve dists ~periods =
  List.map (fun period -> (period, parametric_yield dists ~period)) periods

let period_for_yield dists ~target ~lo ~hi =
  if target <= 0.0 || target >= 1.0 then invalid_arg "Yield.period_for_yield: bad target";
  if lo >= hi then invalid_arg "Yield.period_for_yield: bad range";
  if parametric_yield dists ~period:hi < target then hi
  else begin
    let rec bisect lo hi n =
      if n = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if parametric_yield dists ~period:mid >= target then bisect lo mid (n - 1)
        else bisect mid hi (n - 1)
      end
    in
    bisect lo hi 40
  end
