(** Normal delay distributions. *)

type t = { mean : float; sigma : float }

val make : mean:float -> sigma:float -> t
(** Raises [Invalid_argument] on negative sigma. *)

val variability : t -> float
(** Coefficient of variation sigma/mean — the paper's eq. (1).  This is
    the metric Section III *rejects* for cell selection (Fig. 1): two
    distributions can share it while having very different dispersions. *)

val pdf : t -> float -> float
val cdf : t -> float -> float
(** Via an Abramowitz–Stegun erf approximation, |error| < 1.5e-7. *)

val quantile_3sigma : t -> float
(** [mean + 3 sigma] — the paper's path-failure criterion (Fig. 14). *)

val sum_independent : t list -> t
(** Convolution of independent normals: means add, variances add. *)

val scale : t -> float -> t
(** Multiplies both mean and sigma — corner scaling (Section VII-C). *)
