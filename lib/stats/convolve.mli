(** Path-level convolution of cell delay distributions (Section V-B).

    A data-path's delay distribution follows from its cells':
    - eq. (5): the path mean is the sum of cell means;
    - eqs. (6)–(9): the path variance sums the full covariance matrix,
      which under a uniform correlation [rho] collapses to
      [sum sigma_i^2 + sum_{i<>j} rho sigma_i sigma_j];
    - eq. (10): with [rho = 0] (the paper's assumption for local
      variation) the variance is just the sum of squared sigmas. *)

val path_variance_cov : float array array -> float
(** eq. (8): sum of all entries of a covariance matrix.
    Raises [Invalid_argument] if the matrix is not square. *)

val covariance_matrix : sigmas:float array -> rho:float -> float array array
(** eqs. (6)–(7) with a uniform correlation coefficient. *)

val path_dist_rho : rho:float -> (float * float) list -> Dist.t
(** Path distribution from [(mean, sigma)] cell pairs under uniform
    correlation [rho] (eq. 9).  [rho] must lie in [\[0, 1\]]. *)

val path_dist : (float * float) list -> Dist.t
(** eq. (10): the [rho = 0] special case. *)

val cell_dists : Vartune_sta.Path.t -> (float * float) list
(** [(mean, sigma)] per step of an extracted critical path: the mean is
    the step delay the timer computed; the sigma is interpolated from the
    arc's sigma tables at the same (slew, load) operating point.  Sigma is
    [0.] when the library carries no statistics. *)

val of_path : Vartune_sta.Path.t -> Dist.t
(** [path_dist (cell_dists p)]. *)

val of_path_rho : rho:float -> Vartune_sta.Path.t -> Dist.t
