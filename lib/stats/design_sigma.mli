(** Design-level local-variation metric (Section V, eq. 11).

    The design distribution aggregates the worst path to every unique
    endpoint: means sum, variances sum.  It is the figure the tuning
    methods are judged by (Figs. 10–11). *)

type t = {
  dist : Dist.t;  (** the design's aggregate (mean, sigma) *)
  paths : int;  (** number of endpoint paths aggregated *)
  worst_path_3sigma : float;  (** max over paths of mean + 3 sigma *)
}

val of_paths : Vartune_sta.Path.t list -> t
(** Aggregates pre-extracted critical paths (eq. 11). *)

val of_dists : Dist.t list -> Dist.t
(** eq. (11) over already-convolved path distributions. *)

val measure : Vartune_sta.Timing.t -> Vartune_netlist.Netlist.t -> t
(** Extracts the worst path per endpoint and aggregates. *)
