type t = { mean : float; sigma : float }

let make ~mean ~sigma =
  if sigma < 0.0 then invalid_arg "Dist.make: negative sigma";
  { mean; sigma }

let variability t =
  if t.mean = 0.0 then invalid_arg "Dist.variability: zero mean";
  t.sigma /. t.mean

let pdf t x =
  if t.sigma = 0.0 then if x = t.mean then infinity else 0.0
  else begin
    let z = (x -. t.mean) /. t.sigma in
    exp (-0.5 *. z *. z) /. (t.sigma *. sqrt (2.0 *. Float.pi))
  end

(* Abramowitz & Stegun 7.1.26 *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t -. 0.284496736)
          *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let cdf t x =
  if t.sigma = 0.0 then if x >= t.mean then 1.0 else 0.0
  else 0.5 *. (1.0 +. erf ((x -. t.mean) /. (t.sigma *. sqrt 2.0)))

let quantile_3sigma t = t.mean +. (3.0 *. t.sigma)

let sum_independent dists =
  let mean = List.fold_left (fun acc d -> acc +. d.mean) 0.0 dists in
  let var = List.fold_left (fun acc d -> acc +. (d.sigma *. d.sigma)) 0.0 dists in
  { mean; sigma = sqrt var }

let scale t k = { mean = t.mean *. k; sigma = t.sigma *. Float.abs k }
