module Arc = Vartune_liberty.Arc
module Path = Vartune_sta.Path

let path_variance_cov matrix =
  let n = Array.length matrix in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Convolve: matrix not square")
    matrix;
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 matrix

let covariance_matrix ~sigmas ~rho =
  let n = Array.length sigmas in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then sigmas.(i) *. sigmas.(i) else rho *. sigmas.(i) *. sigmas.(j)))

let path_dist_rho ~rho cells =
  if rho < 0.0 || rho > 1.0 then invalid_arg "Convolve.path_dist_rho: rho out of range";
  let mean = List.fold_left (fun acc (m, _) -> acc +. m) 0.0 cells in
  let sigmas = Array.of_list (List.map snd cells) in
  let variance = path_variance_cov (covariance_matrix ~sigmas ~rho) in
  Dist.make ~mean ~sigma:(sqrt variance)

let path_dist cells =
  let mean = List.fold_left (fun acc (m, _) -> acc +. m) 0.0 cells in
  let variance = List.fold_left (fun acc (_, s) -> acc +. (s *. s)) 0.0 cells in
  Dist.make ~mean ~sigma:(sqrt variance)

let cell_dists (path : Path.t) =
  List.map
    (fun (s : Path.step) ->
      (s.delay, Arc.sigma s.arc ~slew:s.input_slew ~load:s.load))
    path.steps

let of_path path = path_dist (cell_dists path)
let of_path_rho ~rho path = path_dist_rho ~rho (cell_dists path)
