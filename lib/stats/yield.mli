(** Parametric timing yield.

    A die passes when every endpoint path meets the clock.  Treating the
    worst paths as independent normals (the same ρ=0 assumption as
    eq. 10), the yield at a clock period is the product of per-path
    probabilities Φ((T_eff − μ)/σ) — the quantity the guard band in
    Section III exists to protect. *)

val path_yield : Dist.t -> period:float -> float
(** Probability one path meets the (effective) period. *)

val parametric_yield : Dist.t list -> period:float -> float
(** Product over paths, computed in log space for numerical stability.
    [1.0] for an empty list. *)

val yield_curve :
  Dist.t list -> periods:float list -> (float * float) list
(** [(period, yield)] samples of the yield curve. *)

val period_for_yield :
  Dist.t list -> target:float -> lo:float -> hi:float -> float
(** Smallest period in [\[lo, hi\]] achieving the target yield, by
    bisection (yield is monotone in the period); [hi] if unreachable.
    Raises [Invalid_argument] unless [0 < target < 1] and [lo < hi]. *)
