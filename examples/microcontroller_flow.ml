(* Full design-level flow (the paper's headline experiment, one point).

   Builds the statistical library, synthesises the 20k-gate
   microcontroller at its minimum clock period, then re-synthesises with
   the sigma-ceiling restriction and compares design sigma and area.

   Takes a couple of minutes at full fidelity; set VARTUNE_SAMPLES to
   lower the Monte-Carlo sample count.

   Run with: dune exec examples/microcontroller_flow.exe *)

module Experiment = Vartune_flow.Experiment
module Report = Vartune_flow.Report
module Synthesis = Vartune_synth.Synthesis
module Netlist = Vartune_netlist.Netlist
module Design_sigma = Vartune_stats.Design_sigma
module Dist = Vartune_stats.Dist
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold

let src = Logs.Src.create "vartune.examples.mcu" ~doc:"microcontroller flow example"

module Log = (val Logs.src_log src : Logs.LOG)

let samples =
  match Sys.getenv_opt "VARTUNE_SAMPLES" with
  | Some s -> int_of_string s
  | None -> 30

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  Log.app (fun m -> m "preparing experiment setup (N=%d sample libraries)..." samples);
  let setup =
    Experiment.prepare_request (Vartune_flow.Request.Min_period { seed = 42; samples })
  in
  Printf.printf "minimum clock period: %.2f ns (paper: 2.41 ns on their 40 nm flow)\n"
    setup.Experiment.min_period;
  let period = List.assoc "high" setup.Experiment.periods in

  Log.app (fun m -> m "synthesising baseline at %.2f ns..." period);
  let base = Experiment.baseline setup ~period in
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.02 }
  in
  Log.app (fun m -> m "re-synthesising with sigma-ceiling restriction...");
  let tuned = Experiment.tuned setup ~period ~tuning in

  let describe label (run : Experiment.run) =
    let r = run.Experiment.result in
    Printf.printf "\n%s\n" label;
    Printf.printf "  feasible        %b (worst slack %+.3f ns)\n" r.Synthesis.feasible
      r.Synthesis.worst_slack;
    Printf.printf "  cells           %d\n" r.Synthesis.instances;
    Printf.printf "  area            %.0f um^2\n" r.Synthesis.area;
    Printf.printf "  design sigma    %.4f ns over %d endpoint paths\n"
      run.Experiment.design_sigma.Design_sigma.dist.Dist.sigma
      run.Experiment.design_sigma.Design_sigma.paths;
    Printf.printf "  top cells       ";
    List.iteri
      (fun i (name, count) -> if i < 6 then Printf.printf "%s:%d " name count)
      (Netlist.cell_usage r.Synthesis.netlist);
    print_newline ()
  in
  describe "baseline synthesis" base;
  describe "sigma-ceiling 0.02 ns tuned synthesis" tuned;
  Printf.printf "\nsigma decrease %s at area increase %s (paper: -37%% at +7%%)\n"
    (Report.pct (Experiment.sigma_reduction ~baseline:base ~tuned))
    (Report.pct (Experiment.area_increase ~baseline:base ~tuned))
