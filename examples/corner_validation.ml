(* Corner validation by path Monte Carlo (paper Figs 15-16).

   Synthesises the design once, extracts short/medium/long critical
   paths and re-simulates them with the analytic "transistor-level"
   model at fast/typical/slow corners, with local-only and global+local
   variation.

   Run with: dune exec examples/corner_validation.exe *)

module Experiment = Vartune_flow.Experiment
module Path = Vartune_sta.Path
module Path_mc = Vartune_monte.Path_mc
module Corner = Vartune_process.Corner
module Report = Vartune_flow.Report

let src = Logs.Src.create "vartune.examples.corners" ~doc:"corner validation example"

module Log = (val Logs.src_log src : Logs.LOG)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  Log.app (fun m -> m "preparing experiment setup and baseline synthesis...");
  let setup =
    Experiment.prepare_request (Vartune_flow.Request.Min_period { seed = 42; samples = 20 })
  in
  let period = List.assoc "high" setup.Experiment.periods in
  let base = Experiment.baseline setup ~period in
  let cfg = Path_mc.default_config in
  List.iter
    (fun (label, depth) ->
      match Experiment.find_path_of_depth base ~depth with
      | None -> ()
      | Some path ->
        Report.sub_heading (Printf.sprintf "%s path: %d cells" label (Path.depth path));
        List.iter
          (fun (corner, (r : Path_mc.result)) ->
            Printf.printf "  %-10s mean %.3f ns  sigma %.4f ns  sigma/mean %.3f\n"
              (Corner.name corner) r.Path_mc.mean r.Path_mc.sigma
              (r.Path_mc.sigma /. r.Path_mc.mean))
          (Path_mc.corner_sweep cfg ~seed:99 path);
        let share = Path_mc.local_share cfg ~seed:99 path in
        Printf.printf "  local share of total variance: %s\n" (Report.pct share))
    [ ("short", 3); ("medium", 18); ("long", 57) ];
  print_endline
    "\nMean and sigma scale by the same corner factor, so library tuning performed at\n\
     the typical corner remains valid at the fast and slow corners (Section VII-C)."
