(* Inverter drive ladder exploration (paper Fig 4).

   Shows how drive strength shapes the local-variation sigma surface:
   bigger devices match better (Pelgrom), so high drives have lower and
   flatter sigma — the physical basis for drive-strength clustering.

   Run with: dune exec examples/inverter_surfaces.exe *)

module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut
module Grid = Vartune_util.Grid
module Slope = Vartune_tuning.Slope
module Threshold = Vartune_tuning.Threshold
module Report = Vartune_flow.Report

let () =
  let specs = List.filter_map Catalog.find [ "INV" ] in
  let statlib =
    Statistical.build Characterize.default_config ~mismatch:Mismatch.default ~seed:11
      ~n:40 ~specs ()
  in
  let sigma_of name =
    match List.filter_map Arc.worst_sigma (Cell.arcs (Library.find statlib name)) with
    | lut :: _ -> lut
    | [] -> failwith "no sigma"
  in
  List.iter
    (fun name ->
      let lut = sigma_of name in
      Report.sub_heading name;
      Report.surface lut;
      let load_slope = Slope.load_slope lut in
      Printf.printf "  max sigma %.4f ns; max load slope %.3f ns/pF; max slew slope %.4f\n"
        (Grid.max_value (Lut.values lut))
        (Grid.max_value (Lut.values load_slope))
        (Grid.max_value (Lut.values (Slope.slew_slope lut))))
    [ "INV_1"; "INV_2"; "INV_4"; "INV_8"; "INV_16"; "INV_32" ];

  Report.sub_heading "slope-bound threshold extraction on INV_1";
  let lut = sigma_of "INV_1" in
  List.iter
    (fun bound ->
      match Threshold.extract_slope_threshold lut ~load_bound:bound ~slew_bound:0.06 with
      | Some threshold ->
        Printf.printf "  load slope < %-5g -> sigma threshold %.4f ns\n" bound threshold
      | None -> Printf.printf "  load slope < %-5g -> no flat region\n" bound)
    [ 1.0; 0.05; 0.03; 0.01 ]
