(* Netlist interchange: synthesise, export structural Verilog, re-import
   and re-analyse — the write/read path every EDA flow depends on.

   Run with: dune exec examples/netlist_exchange.exe *)

module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Timing = Vartune_sta.Timing
module Verilog = Vartune_netlist.Verilog
module Netlist = Vartune_netlist.Netlist
module Characterize = Vartune_charlib.Characterize

let () =
  let lib = Characterize.nominal Characterize.default_config in
  let g = Ir.create ~name:"alu8" in
  let a = Word.inputs g ~prefix:"a" ~width:8 in
  let b = Word.inputs g ~prefix:"b" ~width:8 in
  let sum, carry = Word.add_fast g a b in
  Word.outputs g ~prefix:"s" (Word.reg g sum);
  Ir.output g "co" (Ir.ff g ~d:carry ());
  let r = Synthesis.run (Constraints.make ~clock_period:2.0 ()) lib g in
  Printf.printf "synthesised %s: %d cells, slack %+.3f\n" "alu8"
    r.Synthesis.instances r.Synthesis.worst_slack;

  let path = Filename.temp_file "alu8" ".v" in
  Verilog.write_file path r.Synthesis.netlist;
  Printf.printf "wrote %s (%d bytes)\n" path (Unix.stat path).Unix.st_size;
  print_endline "--- excerpt ---";
  let ic = open_in path in
  (try
     for _ = 1 to 12 do
       print_endline (input_line ic)
     done
   with End_of_file -> ());
  close_in ic;
  print_endline "--- end excerpt ---";

  let back = Verilog.parse_file ~library:lib path in
  let timing = Timing.run (Timing.default_config ~clock_period:2.0) back in
  Printf.printf "re-imported: %d cells, worst slack %+.3f (matches: %b)\n"
    (Netlist.instance_count back) (Timing.worst_slack timing)
    (Float.abs (Timing.worst_slack timing -. r.Synthesis.worst_slack) < 1e-9);
  Sys.remove path
