(* Liberty-format round trip.

   Demonstrates the library file format: characterise a subset, write it
   out in the liberty-like syntax, parse it back, and verify the result
   is identical entry for entry.

   Run with: dune exec examples/liberty_roundtrip.exe *)

module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Printer = Vartune_liberty.Printer
module Parser = Vartune_liberty.Parser
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut

let () =
  let specs = List.filter_map Catalog.find [ "INV"; "ND2"; "FA1"; "DFF" ] in
  let lib =
    Statistical.build Characterize.default_config ~mismatch:Mismatch.default ~seed:3
      ~n:10 ~specs ()
  in
  let text = Printer.to_string lib in
  Printf.printf "serialised %d cells into %d bytes of liberty text\n" (Library.size lib)
    (String.length text);
  print_endline "--- excerpt ---";
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 24)
  |> List.iter print_endline;
  print_endline "--- end excerpt ---";
  let reparsed = Parser.parse text in
  let cells_equal (a : Cell.t) (b : Cell.t) =
    a.Cell.name = b.Cell.name
    && a.Cell.area = b.Cell.area
    && List.for_all2
         (fun (x : Arc.t) (y : Arc.t) ->
           Lut.equal x.Arc.rise_delay y.Arc.rise_delay
           && Lut.equal x.Arc.fall_delay y.Arc.fall_delay)
         (Cell.arcs a) (Cell.arcs b)
  in
  let ok = List.for_all2 cells_equal (Library.cells lib) (Library.cells reparsed) in
  Printf.printf "round trip %s: %d cells re-parsed identically\n"
    (if ok then "OK" else "FAILED")
    (Library.size reparsed);
  if not ok then exit 1
