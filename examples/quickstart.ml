(* Quickstart: the whole tuning pipeline on a pocket-sized library.

   1. Characterise a few cell families under Monte-Carlo local variation.
   2. Merge the samples into a statistical library (mean + sigma LUTs).
   3. Extract a sigma threshold and restrict each cell's look-up table to
      its robust (slew, load) window.

   Run with: dune exec examples/quickstart.exe *)

module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Catalog = Vartune_stdcell.Catalog
module Spec = Vartune_stdcell.Spec
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold
module Restrict = Vartune_tuning.Restrict
module Report = Vartune_flow.Report

let src = Logs.Src.create "vartune.examples.quickstart" ~doc:"quickstart example"

module Log = (val Logs.src_log src : Logs.LOG)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  (* a small catalog subset keeps this instant *)
  let specs =
    List.filter_map Catalog.find [ "INV"; "ND2"; "NR2"; "XO2"; "DFF" ]
  in
  let config = Characterize.default_config in
  Log.app (fun m -> m "1. building a statistical library from 30 Monte-Carlo samples...");
  let statlib =
    Statistical.build config ~mismatch:Mismatch.default ~seed:7 ~n:30 ~specs ()
  in
  Printf.printf "   %d cells, statistical = %b\n" (Library.size statlib)
    (Statistical.is_statistical statlib);

  Log.app (fun m -> m "@.2. delay-sigma surface of ND2_1 (local variation per LUT entry):");
  let nd2 = Library.find statlib "ND2_1" in
  (match List.filter_map Arc.worst_sigma (Cell.arcs nd2) with
  | lut :: _ -> Report.surface lut
  | [] -> ());

  Log.app (fun m -> m "@.3. tuning with a sigma ceiling of 0.02 ns:");
  let tuning =
    { Tuning_method.population = Cluster.Per_cell;
      criterion = Threshold.Sigma_ceiling 0.02 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  Printf.printf "   removed %s of the library's LUT entries from use\n"
    (Report.pct (Restrict.restriction_fraction table statlib));
  List.iter
    (fun (cell_name, pin, status) ->
      match status with
      | Restrict.Window w ->
        Printf.printf "   %-8s %-3s -> slew <= %.3g ns, load <= %.4g pF\n" cell_name pin
          w.Restrict.slew_max w.Restrict.load_max
      | Restrict.Unusable -> Printf.printf "   %-8s %-3s -> unusable\n" cell_name pin
      | Restrict.Unrestricted -> ())
    (List.filteri (fun i _ -> i < 8) (Restrict.restricted_pins table));
  print_endline "\nThese windows are what synthesis receives as per-pin constraints.";
  print_endline "See examples/microcontroller_flow.ml for the full design-level flow."
