(* Power and yield views of library tuning (extensions beyond the paper).

   Synthesises a 16-bit datapath, applies a sigma-ceiling restriction and
   compares the two designs on average power (switching / internal /
   leakage), hold margins and parametric timing yield — the quantity the
   clock guard band exists to protect.

   Run with: dune exec examples/power_and_yield.exe *)

module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Timing = Vartune_sta.Timing
module Power = Vartune_sta.Power
module Timing_report = Vartune_sta.Timing_report
module Path = Vartune_sta.Path
module Convolve = Vartune_stats.Convolve
module Yield = Vartune_stats.Yield
module Statistical = Vartune_statlib.Statistical
module Characterize = Vartune_charlib.Characterize
module Mismatch = Vartune_process.Mismatch
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold

let datapath () =
  let g = Ir.create ~name:"datapath16" in
  let a = Word.inputs g ~prefix:"a" ~width:16 in
  let b = Word.inputs g ~prefix:"b" ~width:16 in
  let sum, _ = Word.add_fast g a b in
  let prod = Word.multiply g (Array.sub a 0 8) (Array.sub b 0 8) in
  let sel = Word.mux g ~sel:(Word.less_than g a b) sum (Array.sub prod 0 16) in
  Word.outputs g ~prefix:"q" (Word.reg g sel);
  g

let src = Logs.Src.create "vartune.examples.power" ~doc:"power and yield example"

module Log = (val Logs.src_log src : Logs.LOG)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  Log.app (fun m -> m "building statistical library (25 samples)...");
  let statlib =
    Statistical.build Characterize.default_config ~mismatch:Mismatch.default ~seed:8 ~n:25 ()
  in
  let ir = datapath () in
  let period = 3.0 in
  let base = Synthesis.run (Constraints.make ~clock_period:period ()) statlib ir in
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.02 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  let tuned =
    Synthesis.run (Constraints.make ~clock_period:period ~restrictions:table ()) statlib ir
  in

  let describe label (r : Synthesis.result) =
    Printf.printf "\n=== %s ===\n" label;
    print_endline (Timing_report.summary r.Synthesis.timing);
    Format.printf "%a@." Power.pp (Power.estimate r.Synthesis.timing r.Synthesis.netlist);
    let dists =
      List.map Convolve.of_path
        (Path.worst_per_endpoint r.Synthesis.timing r.Synthesis.netlist)
    in
    List.iter
      (fun p ->
        Printf.printf "yield at %.2f ns effective: %6.2f %%\n" p
          (100.0 *. Yield.parametric_yield dists ~period:p))
      [ period -. 0.4; period -. 0.3; period -. 0.2 ];
    dists
  in
  let base_dists = describe "baseline" base in
  let tuned_dists = describe "sigma ceiling 0.02 ns" tuned in
  let p99 d = Yield.period_for_yield d ~target:0.99 ~lo:1.0 ~hi:6.0 in
  Printf.printf "\nclock achieving 99%% parametric yield: %.3f ns -> %.3f ns\n"
    (p99 base_dists) (p99 tuned_dists);

  (* finally, show a classic timing report for the tuned design *)
  print_endline "\n=== worst path (tuned) ===";
  print_string (Timing_report.report ~max_paths:1 tuned.Synthesis.timing tuned.Synthesis.netlist)
